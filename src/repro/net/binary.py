"""The wire-efficient binary codec (``codec="binary"``).

JSON spends most of a frame on envelope punctuation, quoted attribute
names and decimal integers — pure overhead on the fan-out hot path,
where one logical event becomes N per-receiver frames (docs/PERF.md,
E11).  This codec replaces the JSON *body* behind the shared 4-byte
length framing with:

* a **struct-packed envelope** — magic, version, a one-byte id for the
  message kind, a flag byte, varint ``msg_id``/``reply_to`` and
  length-prefixed sender/addressee strings;
* a compact **tagged value encoding** for the payload (small ints and
  short strings in one tag byte, varint lengths for the rest — the
  msgpack idea, dependency-free);
* **interned attribute names**: the protocol's recurring payload keys
  and enum-like values are table indexes (2 bytes) instead of quoted
  strings.  The table is part of the wire format version — append-only,
  never reordered (docs/PROTOCOL.md).

The first body byte is :data:`MAGIC`, a UTF-8 continuation byte no JSON
document can start with, so binary and JSON frames coexist on one
connection and negotiation is pure auto-detection (see
:mod:`repro.net.codec`).

Two memos keep the hot path cheap in *CPU*, not just bytes:

* the encoder caches the payload's encoded bytes by payload-container
  identity — a server broadcast builds one ``Message`` per receiver
  around the same payload dict, so the payload encodes once per fan-out;
* the decoder interns decoded payloads by their exact encoded bytes —
  the N in-process receivers of one broadcast share a single decoded
  dict instead of re-parsing N identical bodies.  Payload containers are
  already shared across messages on the encode side (see
  ``repro.net.message._JSON_MEMO``), so handlers treating payloads as
  immutable is an established invariant, not a new constraint.

Round-trip semantics are JSON's: tuples decode as lists, non-string map
keys are stringified exactly like ``json.dumps`` would, int/float/bool/
None/str/list/dict round-trip by value.  The property suite asserts
binary ≡ JSON on arbitrary messages (tests/property).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CodecError
from repro.net import message as _message
from repro.net.codec import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    HEADER_SIZE,
    MAX_FRAME_SIZE,
)
from repro.net.message import ALL_KINDS, Message

#: First body byte of every binary frame.  0xB5 is a UTF-8 continuation
#: byte: no JSON (UTF-8) body can begin with it.
MAGIC = 0xB5

#: Binary body layout version.  Bumped when the envelope layout, the
#: value tags, the kind table or the intern table change incompatibly.
VERSION = 1

_HEADER = struct.Struct(">I")
_FLOAT64 = struct.Struct(">d")

#: Flag-byte bits.
_FLAG_REPLY_TO = 0x01
_FLAG_TRACE = 0x02

# ---------------------------------------------------------------------------
# Wire tables (append-only; order is part of VERSION 1)
# ---------------------------------------------------------------------------

#: Message kinds by wire id.  APPEND ONLY — ids are on the wire.
KIND_TABLE: Tuple[str, ...] = (
    "register",
    "register_ack",
    "unregister",
    "instance_list",
    "couple",
    "decouple",
    "couple_update",
    "remote_couple",
    "remote_decouple",
    "lock_request",
    "lock_reply",
    "unlock",
    "event",
    "event_broadcast",
    "event_ack",
    "fetch_state",
    "state_reply",
    "push_state",
    "remote_copy",
    "resync_request",
    "command",
    "command_reply",
    "permission_set",
    "permission_reply",
    "history_push",
    "undo_request",
    "undo_reply",
    "migrate_export",
    "migrate_state",
    "migrate_import",
    "migrate_ack",
    "catchup_request",
    "catchup_reply",
    "error",
    "shard_attach",
    "shard_hello",
    "shard_forward",
    "shard_uplink",
    "shard_ping",
    "shard_pong",
    "shard_sync",
    "shard_inventory",
    "shard_inventory_reply",
    "cluster_status",
    "cluster_status_reply",
    "cluster_reshard",
    "cluster_reshard_reply",
    "shard_obs_pull",
    "shard_obs_reply",
)

#: Escape id for a kind not in :data:`KIND_TABLE` (inline string follows).
KIND_INLINE = 0xFF

_KIND_IDS: Dict[str, int] = {kind: i for i, kind in enumerate(KIND_TABLE)}

#: Interned strings: the protocol's recurring payload keys plus its
#: enum-like values (event types, coupling strategies, endpoint ids).
#: APPEND ONLY — indexes are on the wire.  Capped below 128 so every
#: index is a one-byte varint.
INTERN_TABLE: Tuple[str, ...] = (
    # payload keys (protocol envelope level)
    "action", "after_seq", "all", "app_type", "attrs", "author",
    "cause", "command", "conflicts", "couple_groups", "couple_links",
    "couples", "current_state", "data", "delta", "entries", "event",
    "failed_kind", "fingerprint", "first_seq", "floors", "fp",
    "granted", "granted_at", "group", "history", "host", "instance_id",
    "joined", "last_seq", "left", "link", "links", "locks", "mode",
    "msg", "object", "objects", "origin", "origin_msg_id", "owner",
    "params", "path", "pending_acks", "predefined", "processed",
    "reason", "record", "records", "redo", "registered", "release",
    "responder", "result", "revision", "roster", "rule", "semantic",
    "seq", "server_time", "shard", "snapshot", "source", "source_path",
    "state", "strict", "structure", "sync", "target", "targets",
    "title", "token", "type", "undo", "user", "value", "values",
    "version", "versions", "want_reply",
    # enum-like values
    "activate", "value_changed", "selection_changed",
    "attribute_changed", "focus_in", "focus_out", "key_press",
    "pointer_motion", "draw", "destroyed", "child_added",
    "child_removed", "auto", "merge", "flexible", "add", "remove",
    "noop", "server", "router",
)

assert len(INTERN_TABLE) < 128, "intern indexes must stay one varint byte"

_INTERN_IDS: Dict[str, int] = {s: i for i, s in enumerate(INTERN_TABLE)}

# ---------------------------------------------------------------------------
# Value tags (VERSION 1)
# ---------------------------------------------------------------------------
#
#   0x00..0x7F  positive fixint 0..127
#   0x80..0x9F  fixstr, length 0..31 (UTF-8 bytes follow)
#   0xA0..0xAF  fixmap, 0..15 pairs
#   0xB0..0xBF  fixarray, 0..15 items
#   0xC0        null
#   0xC1        false
#   0xC2        true
#   0xC3        int, zigzag varint
#   0xC4        float64, 8 bytes big-endian
#   0xC5        str, varint byte length + UTF-8
#   0xC6        array, varint count
#   0xC7        map, varint pair count
#   0xC8        interned string, varint table index
#   0xC9        sized map: varint byte length, then the map encoding —
#               the length prefix lets both sides memoize nested dicts
#               by their exact bytes (fan-out frames differ only in
#               their envelope and per-receiver fields, so the shared
#               ``event`` sub-map encodes and decodes once per fan-out,
#               not once per frame)
#   0xE0..0xFF  negative fixint -32..-1

_NIL = 0xC0
_FALSE = 0xC1
_TRUE = 0xC2
_INT = 0xC3
_FLOAT = 0xC4
_STR = 0xC5
_ARRAY = 0xC6
_MAP = 0xC7
_INTERNED = 0xC8
_SIZED_MAP = 0xC9


def _uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _zigzag(v: int) -> int:
    return (v << 1) if v >= 0 else ((-v << 1) - 1)


def _unzigzag(n: int) -> int:
    return (n >> 1) if not (n & 1) else -((n + 1) >> 1)


def _key_str(key: Any) -> str:
    """Stringify a non-str map key exactly like ``json.dumps`` does."""
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, (int, float)):
        return repr(key)
    raise CodecError(f"map key {key!r} is not JSON-representable")


#: Precomputed 2-byte encodings of every interned string.
_INTERN_BYTES: Tuple[bytes, ...] = tuple(
    bytes((_INTERNED, i)) for i in range(len(INTERN_TABLE))
)

#: Whole-encoding cache for short strings.  Protocol strings repeat
#: heavily (pathnames, instance ids, event types); keying by the string
#: itself is safe — str is immutable — and turns a re-encode into one
#: dict hit plus one concat.
_STR_CACHE: Dict[str, bytes] = {}
_STR_CACHE_MAX = 4096


def _enc_str(out: bytearray, value: str) -> None:
    enc = _STR_CACHE.get(value)
    if enc is None:
        idx = _INTERN_IDS.get(value)
        if idx is not None:
            enc = _INTERN_BYTES[idx]
        else:
            data = value.encode("utf-8")
            n = len(data)
            if n <= 31:
                enc = bytes((0x80 | n,)) + data
            else:
                head = bytearray((_STR,))
                _uvarint(head, n)
                out += head
                out += data
                return  # long strings are not worth pinning
        if len(_STR_CACHE) >= _STR_CACHE_MAX:
            _STR_CACHE.clear()
        _STR_CACHE[value] = enc
    out += enc


def _enc_value(out: bytearray, value: Any) -> None:
    t = type(value)
    if t is str:
        _enc_str(out, value)
    elif t is bool:
        out.append(_TRUE if value else _FALSE)
    elif t is int:
        if 0 <= value <= 0x7F:
            out.append(value)
        elif -32 <= value < 0:
            out.append(256 + value)
        else:
            out.append(_INT)
            _uvarint(out, _zigzag(value))
    elif t is float:
        out.append(_FLOAT)
        out += _FLOAT64.pack(value)
    elif t is dict:
        # Dicts ship as sized maps and hit the encode memo: a
        # broadcast's per-receiver payloads differ (``targets``), but
        # they share the ``event`` dict — its bytes are built once per
        # fan-out and replayed into every frame.
        entry = _ENC_MEMO.get(id(value))
        if entry is not None and entry[0] is value:
            out += entry[1]
            return
        sub = bytearray()
        n = len(value)
        if n <= 15:
            sub.append(0xA0 | n)
        else:
            sub.append(_MAP)
            _uvarint(sub, n)
        for key, item in value.items():
            _enc_str(sub, key if type(key) is str else _key_str(key))
            _enc_value(sub, item)
        head = bytearray((_SIZED_MAP,))
        _uvarint(head, len(sub))
        blob = bytes(head + sub)
        if len(_ENC_MEMO) >= _ENC_MEMO_MAX:
            _ENC_MEMO.clear()
        _ENC_MEMO[id(value)] = (value, blob)
        out += blob
    elif t is list or t is tuple:
        n = len(value)
        if n <= 15:
            out.append(0xB0 | n)
        else:
            out.append(_ARRAY)
            _uvarint(out, n)
        for item in value:
            _enc_value(out, item)
    elif value is None:
        out.append(_NIL)
    # Subclass fallbacks (json.dumps accepts these too):
    elif isinstance(value, bool):
        out.append(_TRUE if value else _FALSE)
    elif isinstance(value, int):
        out.append(_INT)
        _uvarint(out, _zigzag(int(value)))
    elif isinstance(value, float):
        out.append(_FLOAT)
        out += _FLOAT64.pack(float(value))
    elif isinstance(value, str):
        _enc_str(out, str(value))
    elif isinstance(value, dict):
        _enc_value(out, dict(value))
    elif isinstance(value, (list, tuple)):
        _enc_value(out, list(value))
    else:
        raise CodecError(
            f"value {value!r} of type {t.__name__} is not JSON-representable"
        )


def _dec_uvarint(body, pos: int) -> Tuple[int, int]:
    shift = 0
    result = 0
    while True:
        try:
            byte = body[pos]
        except IndexError:
            raise CodecError("truncated varint") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _dec_value(body, pos: int) -> Tuple[Any, int]:
    try:
        tag = body[pos]
    except IndexError:
        raise CodecError("truncated value") from None
    pos += 1
    if tag <= 0x7F:
        return tag, pos
    if tag >= 0xE0:
        return tag - 256, pos
    high = tag & 0xE0
    if high == 0x80:  # fixstr
        n = tag & 0x1F
        end = pos + n
        if end > len(body):
            raise CodecError("truncated string")
        chunk = bytes(body[pos:end])
        value = _DEC_STR_CACHE.get(chunk)
        if value is None:
            value = chunk.decode("utf-8")
            if len(_DEC_STR_CACHE) >= _STR_CACHE_MAX:
                _DEC_STR_CACHE.clear()
            _DEC_STR_CACHE[chunk] = value
        return value, end
    if high == 0xA0:
        n = tag & 0x0F
        if tag & 0x10:  # fixarray 0xB0..0xBF
            out: List[Any] = []
            append = out.append
            for _ in range(n):
                item, pos = _dec_value(body, pos)
                append(item)
            return out, pos
        mapping: Dict[str, Any] = {}
        for _ in range(n):
            key, pos = _dec_value(body, pos)
            if type(key) is not str:
                raise CodecError(f"map key {key!r} is not a string")
            mapping[key], pos = _dec_value(body, pos)
        return mapping, pos
    if tag == _NIL:
        return None, pos
    if tag == _FALSE:
        return False, pos
    if tag == _TRUE:
        return True, pos
    if tag == _INT:
        n, pos = _dec_uvarint(body, pos)
        return _unzigzag(n), pos
    if tag == _FLOAT:
        end = pos + 8
        if end > len(body):
            raise CodecError("truncated float")
        return _FLOAT64.unpack_from(body, pos)[0], end
    if tag == _STR:
        n, pos = _dec_uvarint(body, pos)
        end = pos + n
        if end > len(body):
            raise CodecError("truncated string")
        return bytes(body[pos:end]).decode("utf-8"), end
    if tag == _ARRAY:
        n, pos = _dec_uvarint(body, pos)
        out = []
        append = out.append
        for _ in range(n):
            item, pos = _dec_value(body, pos)
            append(item)
        return out, pos
    if tag == _MAP:
        n, pos = _dec_uvarint(body, pos)
        mapping = {}
        for _ in range(n):
            key, pos = _dec_value(body, pos)
            if type(key) is not str:
                raise CodecError(f"map key {key!r} is not a string")
            mapping[key], pos = _dec_value(body, pos)
        return mapping, pos
    if tag == _INTERNED:
        idx, pos = _dec_uvarint(body, pos)
        try:
            return INTERN_TABLE[idx], pos
        except IndexError:
            raise CodecError(f"interned string index {idx} out of range") from None
    if tag == _SIZED_MAP:
        n, pos = _dec_uvarint(body, pos)
        end = pos + n
        if end > len(body):
            raise CodecError("truncated sized map")
        chunk = bytes(body[pos:end])
        cached = _DEC_MEMO.get(chunk)
        if cached is not None:
            return cached, end
        value, sub_pos = _dec_value(chunk, 0)
        if sub_pos != n:
            raise CodecError("sized map length mismatch")
        if type(value) is not dict:
            raise CodecError("sized map does not contain a map")
        if len(_DEC_MEMO) >= _DEC_MEMO_MAX:
            _DEC_MEMO.clear()
        _DEC_MEMO[chunk] = value
        return value, end
    raise CodecError(f"unknown value tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Payload memos (hot-path CPU, see module docstring)
# ---------------------------------------------------------------------------

#: Encoder memo: dict-container identity -> (dict, encoded bytes).  The
#: strong reference pins the container so its id cannot be recycled
#: (same pattern as ``repro.net.message._JSON_MEMO``).  Holds nested
#: dicts as well as whole payloads — see the sized-map tag.
_ENC_MEMO: Dict[int, Tuple[Any, bytes]] = {}
_ENC_MEMO_MAX = 4096

#: Decoder memo: exact encoded bytes -> the decoded (shared) dict.
_DEC_MEMO: Dict[bytes, Dict[str, Any]] = {}
_DEC_MEMO_MAX = 4096

#: Decoder twin of ``_STR_CACHE``: short UTF-8 chunks -> str.
_DEC_STR_CACHE: Dict[bytes, str] = {}


#: Precomputed body prefix (magic, version, kind id, flags) for every
#: table kind × flag combination — the whole fixed-width envelope head
#: becomes one dict hit and one append on the hot path.
_BODY_PREFIX: Dict[Tuple[str, int], bytes] = {
    (kind, flags): bytes((MAGIC, VERSION, kind_id, flags))
    for kind, kind_id in _KIND_IDS.items()
    for flags in range(4)
}

#: Prefixes for kinds outside the table (inline kind string follows).
_INLINE_PREFIX: Tuple[bytes, ...] = tuple(
    bytes((MAGIC, VERSION, KIND_INLINE, flags)) for flags in range(4)
)


def _encode_body(out: bytearray, message: Message) -> None:
    """Append *message*'s binary body (no length header) to *out*.

    Shared by :meth:`BinaryCodec.encode` (one body per frame) and
    :meth:`BinaryCodec.encode_batch` (many bodies per envelope, one
    output buffer).
    """
    reply_to = message.reply_to
    trace = message.trace
    flags = 0
    if reply_to is not None:
        flags |= _FLAG_REPLY_TO
    if trace is not None:
        flags |= _FLAG_TRACE
    kind = message.kind
    prefix = _BODY_PREFIX.get((kind, flags))
    if prefix is not None:
        out += prefix
    else:
        out += _INLINE_PREFIX[flags]
        _enc_str(out, kind)
    _uvarint(out, _zigzag(message.msg_id))
    if reply_to is not None:
        _uvarint(out, _zigzag(reply_to))
    _enc_str(out, message.sender)
    _enc_str(out, message.to)
    if trace is not None:
        _enc_str(out, trace[0])
        _enc_str(out, trace[1])
    payload = message.payload
    try:
        # The payload is one tagged value (a sized map); its byte
        # length is self-describing, so no separate length field.
        _enc_value(out, payload if type(payload) is dict else dict(payload))
    except CodecError as exc:
        raise CodecError(
            f"cannot encode payload of {kind!r} message: {exc}"
        ) from exc


class BinaryCodec:
    """Struct-packed envelope + tagged values behind the shared framing."""

    name = "binary"

    def encode(self, message: Message) -> bytes:
        frames = message._frames
        if frames is None:
            frames = {}
            object.__setattr__(message, "_frames", frames)
        else:
            cached = frames.get("binary")
            if cached is not None:
                return cached
        out = bytearray(HEADER_SIZE)  # length header back-patched below
        _encode_body(out, message)
        body_len = len(out) - HEADER_SIZE
        if body_len > MAX_FRAME_SIZE:
            raise CodecError(
                f"message of {body_len} bytes exceeds MAX_FRAME_SIZE"
            )
        _HEADER.pack_into(out, 0, body_len)
        frame = bytes(out)
        frames["binary"] = frame
        return frame

    def encode_batch(self, messages: Sequence[Message]) -> bytes:
        """One batch-envelope frame holding every message's binary body.

        The member loop is a flattened copy of :func:`_encode_body`:
        every shared table (string cache, sized-map memo, prefix table)
        is hoisted into locals, each body streams straight into the one
        output buffer behind a fixed-width member-length slot (no
        scratch-buffer copy), and long strings — too big for the global
        string cache — are memoized for the envelope's lifetime, so a
        fan-out's repeated trace ids encode once.  Already-encoded
        messages splice their cached frame body without re-encoding.
        A single-message batch degenerates to the plain per-message
        frame.
        """
        if not messages:
            raise CodecError("encode_batch needs at least one message")
        if len(messages) == 1:
            return self.encode(messages[0])
        out = bytearray(HEADER_SIZE)
        out.append(ENVELOPE_MAGIC)
        out.append(ENVELOPE_VERSION)
        _uvarint(out, len(messages))
        str_cache = _STR_CACHE
        enc_memo = _ENC_MEMO
        prefixes = _BODY_PREFIX
        long_cache: Dict[str, bytes] = {}
        for message in messages:
            frames = message._frames
            if frames is not None:
                cached = frames.get("binary")
                if cached is not None:
                    member_len = len(cached) - HEADER_SIZE
                    if member_len > 0x3FFF:
                        _uvarint(out, member_len)
                    else:
                        # Same two-byte form as the cold path below, so
                        # envelope bytes are cache-state independent.
                        out.append((member_len & 0x7F) | 0x80)
                        out.append(member_len >> 7)
                    out += memoryview(cached)[HEADER_SIZE:]
                    continue
            # Reserve a two-byte member length up front: a varint with a
            # redundant continuation bit decodes identically, and the
            # fixed width lets the body stream into ``out`` directly and
            # the length backpatch in place.
            len_pos = len(out)
            out += b"\x00\x00"
            reply_to = message.reply_to
            trace = message.trace
            flags = 0
            if reply_to is not None:
                flags |= _FLAG_REPLY_TO
            if trace is not None:
                flags |= _FLAG_TRACE
            kind = message.kind
            prefix = prefixes.get((kind, flags))
            if prefix is not None:
                out += prefix
            else:
                out += _INLINE_PREFIX[flags]
                _enc_str(out, kind)
            z = message.msg_id
            z = (z << 1) if z >= 0 else ((-z << 1) - 1)
            while z > 0x7F:
                out.append((z & 0x7F) | 0x80)
                z >>= 7
            out.append(z)
            if reply_to is not None:
                z = (reply_to << 1) if reply_to >= 0 else ((-reply_to << 1) - 1)
                while z > 0x7F:
                    out.append((z & 0x7F) | 0x80)
                    z >>= 7
                out.append(z)
            value = message.sender
            enc = str_cache.get(value)
            if enc is not None:
                out += enc
            else:
                _enc_str(out, value)
            value = message.to
            enc = str_cache.get(value)
            if enc is not None:
                out += enc
            else:
                _enc_str(out, value)
            if trace is not None:
                for value in trace:
                    enc = long_cache.get(value)
                    if enc is None:
                        tmp = bytearray()
                        _enc_str(tmp, value)
                        enc = bytes(tmp)
                        long_cache[value] = enc
                    out += enc
            payload = message.payload
            entry = enc_memo.get(id(payload))
            if entry is not None and entry[0] is payload:
                out += entry[1]
            else:
                try:
                    _enc_value(
                        out,
                        payload if type(payload) is dict else dict(payload),
                    )
                except CodecError as exc:
                    raise CodecError(
                        f"cannot encode payload of {kind!r} message: {exc}"
                    ) from exc
            member_len = len(out) - len_pos - 2
            if member_len > 0x3FFF:
                # Rare giant member: its length needs a wider varint, so
                # rewrite the slot properly.
                body = bytes(out[len_pos + 2 :])
                del out[len_pos:]
                _uvarint(out, member_len)
                out += body
            else:
                out[len_pos] = (member_len & 0x7F) | 0x80
                out[len_pos + 1] = member_len >> 7
        body_len = len(out) - HEADER_SIZE
        if body_len > MAX_FRAME_SIZE:
            raise CodecError(
                f"batch of {body_len} bytes exceeds MAX_FRAME_SIZE"
            )
        _HEADER.pack_into(out, 0, body_len)
        return bytes(out)

    def decode_body(self, body: bytes) -> Message:
        if len(body) < 4 or body[0] != MAGIC:
            raise CodecError("not a binary frame body")
        if body[1] != VERSION:
            raise CodecError(
                f"unsupported binary frame version {body[1]} "
                f"(this build speaks version {VERSION})"
            )
        kind_id = body[2]
        flags = body[3]
        pos = 4
        if kind_id == KIND_INLINE:
            kind, pos = _dec_value(body, pos)
            if type(kind) is not str:
                raise CodecError("inline kind is not a string")
        else:
            try:
                kind = KIND_TABLE[kind_id]
            except IndexError:
                raise CodecError(f"unknown kind id {kind_id}") from None
        n, pos = _dec_uvarint(body, pos)
        msg_id = _unzigzag(n)
        reply_to: Optional[int] = None
        if flags & _FLAG_REPLY_TO:
            n, pos = _dec_uvarint(body, pos)
            reply_to = _unzigzag(n)
        sender, pos = _dec_value(body, pos)
        to, pos = _dec_value(body, pos)
        if type(sender) is not str or type(to) is not str:
            raise CodecError("sender/to are not strings")
        trace: Optional[Tuple[str, str]] = None
        if flags & _FLAG_TRACE:
            t0, pos = _dec_value(body, pos)
            t1, pos = _dec_value(body, pos)
            if type(t0) is not str or type(t1) is not str:
                raise CodecError("trace context is not a string pair")
            trace = (t0, t1)
        payload, end = _dec_value(body, pos)
        if end != len(body):
            raise CodecError("trailing bytes after payload")
        if type(payload) is not dict:
            raise CodecError("binary payload is not a map")
        # Mark the container JSON-safe so Message.__post_init__ skips
        # re-validation — the decode proved it (same contract as
        # Message.from_wire).
        _message._remember(payload, None)
        if kind not in ALL_KINDS:
            raise CodecError(f"unknown message kind {kind!r}")
        return Message(
            kind=kind,
            sender=sender,
            to=to,
            payload=payload,
            msg_id=msg_id,
            reply_to=reply_to,
            trace=trace,
        )

    def wire_size(self, message: Message) -> int:
        return len(self.encode(message))


BINARY_CODEC = BinaryCodec()

# Self-register so ``get_codec("binary")`` and body auto-detection find
# this codec once the module is imported (codec.py imports it lazily).
from repro.net import codec as _codec  # noqa: E402  (import cycle: lazy)

if "binary" not in _codec._CODECS:
    _codec.register_codec(BINARY_CODEC)
