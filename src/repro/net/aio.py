"""Asyncio server transport: batching, backpressure and per-hop retry.

This module replaces the blocking thread-per-connection TCP loop on the
*server* side with a single-threaded :mod:`asyncio` protocol speaking the
same length-prefixed codec (:mod:`repro.net.codec`).  By default batched
frames are just concatenated frames, which any client's
:class:`~repro.net.codec.StreamDecoder` already handles; with
``wire_batching`` on, each flush instead leaves as **one batch-envelope
frame** (:meth:`Codec.encode_batch`), which the same decoder splits
transparently — either way the change is wire-compatible and
protocol-transparent: :class:`CosoftServer` and
:class:`ShardedCosoftCluster` run under it unchanged, and the plain
:class:`~repro.net.tcp.TcpClientTransport` interoperates freely.
:class:`AioClientTransport` is the loop-serviced client counterpart: any
number of instances share one event loop instead of running a reader
thread each.

Three disciplines are layered on the outbound path (docs/RUNTIME.md):

**Batching (Nagle-style).**  Outbound messages are coalesced *per
destination* into one write.  A batch flushes when it reaches
``max_batch`` messages, or when ``max_delay`` elapses after the first
enqueue (``max_delay=0`` flushes at the end of the current event-loop
burst — one write per destination per inbound chunk, adding no latency).

**Backpressure.**  Every destination has a bounded send queue
(``max_queue`` messages).  A slow consumer overflows it; the
``backpressure`` policy decides what happens: ``"drop"`` discards the
overflowing message (attributed in ``TrafficStats.drops_by_reason``),
``"block"`` pauses inbound reading until the queue drains (classic
end-to-end backpressure), ``"disconnect"`` evicts the slow consumer.

**Per-hop retry.**  A flush that finds no live connection for its
destination (or a failed write) is retried with exponential backoff
(``retry_initial`` · ``retry_backoff``ᵃᵗᵗᵉᵐᵖᵗ, capped at
``retry_max_delay``) up to ``retry_limit`` attempts, then dropped as
``undeliverable``.  Retries can duplicate delivery; that is safe because
every message carries an idempotent ``msg_id`` and event broadcasts carry
per-origin sequence numbers the instances deduplicate on
(:meth:`ApplicationInstance.accept_remote_event`).

The batching and retry cores (:class:`SendQueue`, :class:`RetryPolicy`)
are **sans-I/O** and take explicit ``now`` arguments, so unit tests drive
them with a fake clock and never open a socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import socket
import threading
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import DeliveryError, TransportClosedError
from repro.net.codec import Codec, StreamDecoder, get_codec
from repro.net.message import Message
from repro.obs.log import get_logger, log_event
from repro.net.tcp import TcpTransportBase
from repro.net.transport import (
    DROP_BACKPRESSURE,
    DROP_DISCONNECTED,
    DROP_UNDELIVERABLE,
    MessageHandler,
    TrafficStats,
    Transport,
)

#: Valid overflow policies for a bounded send queue.
BACKPRESSURE_POLICIES = ("drop", "block", "disconnect")

_log = get_logger("net.aio")

#: Kernel write-buffer size past which the inline end-of-burst flush
#: defers to a writer task (which awaits ``drain()``), so a slow
#: consumer backs pressure up into the bounded send queue instead of an
#: unbounded transport buffer.
_INLINE_BUFFER_LIMIT = 1 << 16


@dataclass(frozen=True)
class BatchConfig:
    """Tuning knobs of the asyncio runtime (see docs/RUNTIME.md).

    Attributes
    ----------
    max_batch:
        Flush a destination's queue once it holds this many messages.
    max_delay:
        Seconds after the first enqueue before a partial batch flushes.
        ``0`` means "end of the current event-loop burst": everything a
        handler burst produced for one destination leaves in one write,
        with no added latency.
    max_queue:
        Bound of the per-destination send queue, in messages.
    backpressure:
        Overflow policy: ``"drop"``, ``"block"`` or ``"disconnect"``.
    retry_initial:
        First per-hop retry delay, seconds.
    retry_backoff:
        Multiplier applied to the delay after every failed attempt.
    retry_limit:
        Delivery attempts before the batch is dropped as undeliverable.
    retry_max_delay:
        Upper bound on one backoff delay, seconds.
    """

    max_batch: int = 64
    max_delay: float = 0.0
    max_queue: int = 1024
    backpressure: str = "drop"
    retry_initial: float = 0.05
    retry_backoff: float = 2.0
    retry_limit: int = 5
    retry_max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.retry_limit < 1:
            raise ValueError("retry_limit must be >= 1")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")


class RetryPolicy:
    """Exponential backoff schedule for per-hop delivery retries.

    Pure arithmetic over an attempt counter — no clocks, no sockets —
    so tests can table the whole schedule.
    """

    def __init__(self, config: BatchConfig):
        self._initial = config.retry_initial
        self._backoff = config.retry_backoff
        self._limit = config.retry_limit
        self._max_delay = config.retry_max_delay

    def delay(self, attempt: int) -> Optional[float]:
        """Backoff before retry number *attempt* (1-based).

        Returns ``None`` once the attempt budget is exhausted — the
        caller must drop the batch as undeliverable.
        """
        if attempt >= self._limit:
            return None
        return min(
            self._initial * self._backoff ** (attempt - 1), self._max_delay
        )

    def schedule(self) -> List[float]:
        """The full backoff schedule (for documentation and tests)."""
        out = []
        for attempt in range(1, self._limit):
            delay = self.delay(attempt)
            assert delay is not None
            out.append(delay)
        return out


class SendQueue:
    """One destination's bounded outbound queue (sans-I/O).

    Holds ``(message, enqueued_at)`` pairs — encoding happens at flush
    time, where the whole batch is in hand and can leave as one batch
    envelope — and answers the flush-trigger questions — *is a full
    batch ready?*, *has the deadline passed?* — against an explicit
    ``now`` so a fake clock can drive it.
    """

    #: push() outcomes.
    QUEUED = "queued"
    FLUSH = "flush"        # queue reached max_batch: flush immediately
    OVERFLOW = "overflow"  # queue is full: apply the backpressure policy

    def __init__(self, destination: str, config: BatchConfig):
        self.destination = destination
        self.config = config
        self._items: List[Tuple[Message, float]] = []
        #: Failed delivery attempts for the batch currently at the head.
        self.attempts = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, message: Message, now: float) -> str:
        """Append one message; returns the flush decision."""
        if len(self._items) >= self.config.max_queue:
            return self.OVERFLOW
        self._items.append((message, now))
        if len(self._items) >= self.config.max_batch:
            return self.FLUSH
        return self.QUEUED

    def force_push(self, message: Message, now: float) -> None:
        """Append past the bound (the ``block`` policy keeps the message
        and throttles intake instead of discarding)."""
        self._items.append((message, now))

    def deadline(self) -> Optional[float]:
        """When the pending partial batch must flush (None when empty).

        Computed from the oldest *remaining* item's enqueue time: after
        a partial pop the tail gets its own full coalescing window
        instead of inheriting the popped head's (stale) one.
        """
        if not self._items:
            return None
        return self._items[0][1] + self.config.max_delay

    def due(self, now: float) -> bool:
        """True when the queue should flush: full batch or deadline hit."""
        if not self._items:
            return False
        if len(self._items) >= self.config.max_batch:
            return True
        deadline = self.deadline()
        return deadline is not None and now >= deadline

    def pop_batch(
        self, max_messages: Optional[int] = None
    ) -> List[Tuple[Message, float]]:
        """Remove and return up to *max_messages* (message, enqueued_at)
        pairs; the caller encodes them (:meth:`requeue_front` restores
        them verbatim on a failed write)."""
        limit = max_messages if max_messages is not None else self.config.max_batch
        taken = self._items[:limit]
        del self._items[:limit]
        return taken

    def requeue_front(self, items: List[Tuple[Message, float]]) -> None:
        """Put a failed batch back at the head, preserving FIFO order."""
        self._items[:0] = items

    def drain_all(self) -> List[Message]:
        """Empty the queue, returning the abandoned messages."""
        out = [message for message, _ in self._items]
        self._items.clear()
        self.attempts = 0
        return out

    def below_resume_level(self) -> bool:
        """True once a blocked queue has drained enough to resume intake."""
        return len(self._items) <= self.config.max_queue // 2


class _Conn:
    """One accepted client connection."""

    __slots__ = ("peer_id", "reader", "writer")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_id: Optional[str] = None,
    ):
        self.reader = reader
        self.writer = writer
        self.peer_id = peer_id


class AioHostTransport(Transport):
    """The server's asyncio transport: one event loop, zero per-connection
    threads, batched writes.

    Parameters
    ----------
    handler:
        The bound endpoint's ``handle_message`` (a sans-I/O state
        machine).  Invoked only from the event-loop thread, serialized
        with application threads through :meth:`guard`.
    host / port:
        Listen address; port 0 picks a free port (see :attr:`address`).
    config:
        The :class:`BatchConfig` governing batching, backpressure and
        retry.
    loop:
        A running event loop to join (the
        :class:`~repro.server.runtime.AsyncServerRuntime` passes its
        own); ``None`` starts a private loop thread.
    wire_batching:
        When true, every multi-message flush leaves as one batch
        envelope (:meth:`Codec.encode_batch`) instead of concatenated
        per-message frames — one header and one length check amortized
        over the batch.  Defaults off for byte-exact compatibility.
    """

    def __init__(
        self,
        handler: MessageHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        local_id: str = "server",
        config: Optional[BatchConfig] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        codec: object = "json",
        wire_batching: bool = False,
    ):
        self._local_id = local_id
        self._handler = handler
        self._codec: Codec = get_codec(codec)
        self._wire_batching = bool(wire_batching)
        #: Per-peer codec negotiation: each peer is answered in the codec
        #: of its own frames (detected by its connection's StreamDecoder).
        self._peer_codecs: Dict[str, Codec] = {}
        self.config = config if config is not None else BatchConfig()
        self._retry = RetryPolicy(self.config)
        self._stats = TrafficStats()
        self._cond = threading.Condition(threading.RLock())
        self._closed = False

        self._conns: Dict[str, _Conn] = {}
        self._queues: Dict[str, SendQueue] = {}
        #: Wakes a writer sleeping out its coalescing window when the
        #: queue reaches a full batch early (loop-thread only).
        self._flush_events: Dict[str, asyncio.Event] = {}
        self._writer_tasks: Dict[str, asyncio.Task] = {}
        self._reader_tasks: set = set()
        #: Destinations touched since the last inline flush, drained by
        #: one scheduled ``_flush_dirty`` per loop burst (loop-thread
        #: only).  Writer tasks are the fallback for the slow paths:
        #: missing connection, retry backoff, coalescing deadline, or a
        #: kernel write buffer past :data:`_INLINE_BUFFER_LIMIT`.
        self._dirty: set = set()
        self._flush_scheduled = False
        #: Identity of the loop thread, for a cheap "am I on the loop?"
        #: check on the send hot path (set from the loop at bootstrap).
        self._loop_tid: Optional[int] = None

        self._owns_loop = loop is None
        if loop is None:
            self._loop = asyncio.new_event_loop()
            self._loop_thread = threading.Thread(
                target=self._loop.run_forever, name="aio-host-loop", daemon=True
            )
            self._loop_thread.start()
        else:
            self._loop = loop
            self._loop_thread = None

        # Created on the loop; events must be born there.
        async def _bootstrap() -> Tuple[asyncio.AbstractServer, asyncio.Event]:
            self._loop_tid = threading.get_ident()
            server = await asyncio.start_server(self._serve_connection, host, port)
            gate = asyncio.Event()
            gate.set()
            return server, gate

        self._server, self._read_gate = asyncio.run_coroutine_threadsafe(
            _bootstrap(), self._loop
        ).result(timeout=10.0)
        self.address = self._server.sockets[0].getsockname()

    # ------------------------------------------------------------------
    # Transport contract
    # ------------------------------------------------------------------

    @property
    def local_id(self) -> str:
        return self._local_id

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    @contextlib.contextmanager
    def guard(self) -> Iterator[None]:
        """Serialize application threads with event-loop dispatch."""
        with self._cond:
            yield

    def recv(self, message: Message) -> None:
        """Dispatch one inbound message into the endpoint handler."""
        with self._cond:
            if self._closed:
                return
            self._handler(message)
            self._cond.notify_all()

    def send(self, message: Message) -> None:
        """Queue *message* for its destination's next batch.

        Never blocks and never raises for an unreachable destination —
        delivery is attempted with per-hop retry and accounted in
        :attr:`stats` either way.  Encoding happens at flush time, where
        the whole batch is in hand (and the peer's answer codec is
        freshest).
        """
        if self._closed:
            raise TransportClosedError("aio host transport is closed")
        if self._on_loop():
            self._enqueue(message)
        else:
            self._loop.call_soon_threadsafe(self._enqueue, message)

    def drive(self, predicate: Callable[[], bool], timeout: float = 5.0) -> bool:
        """Wait (wall clock) until *predicate* is true; the condition is
        notified after every inbound dispatch."""
        end = _time.monotonic() + timeout
        with self._cond:
            while not predicate():
                remaining = end - _time.monotonic()
                if remaining <= 0:
                    return bool(predicate())
                self._cond.wait(remaining)
            return True

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True

        def _shutdown() -> None:
            for task in list(self._writer_tasks.values()):
                task.cancel()
            for task in list(self._reader_tasks):
                task.cancel()
            for conn in list(self._conns.values()):
                with contextlib.suppress(Exception):
                    conn.writer.close()
            self._conns.clear()
            self._server.close()
            if self._owns_loop:
                self._loop.call_soon(self._loop.stop)

        if self._loop.is_running():
            self._loop.call_soon_threadsafe(_shutdown)
            if self._owns_loop and self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Event-loop internals
    # ------------------------------------------------------------------

    def _on_loop(self) -> bool:
        return threading.get_ident() == self._loop_tid

    def _now(self) -> float:
        return self._loop.time()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(reader, writer)
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
        decoder = StreamDecoder()
        codec_name: Optional[str] = None
        try:
            while not self._closed:
                # Backpressure policy "block": stop reading while any
                # destination queue is past its bound.
                if not self._read_gate.is_set():
                    await self._read_gate.wait()
                data = await reader.read(65536)
                if not data:
                    break
                messages = decoder.feed(data)
                if not messages:
                    continue
                # Dispatch the whole chunk under one guard acquisition:
                # same serialization as per-message recv(), without
                # paying the lock round-trip per message.
                with self._cond:
                    if self._closed:
                        break
                    if conn.peer_id is None:
                        conn.peer_id = messages[0].sender
                        self._conns[conn.peer_id] = conn
                        self._kick_writer(conn.peer_id)
                    if decoder.last_codec != codec_name:
                        # Negotiation: answer the peer in its own codec.
                        codec_name = decoder.last_codec
                        self._peer_codecs[conn.peer_id] = get_codec(codec_name)
                    for message in messages:
                        self._handler(message)
                    self._cond.notify_all()
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            log_event(
                _log,
                logging.WARNING,
                "connection_error",
                peer=conn.peer_id,
                error=type(exc).__name__,
            )
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._reader_tasks.discard(task)
            if conn.peer_id is not None and self._conns.get(conn.peer_id) is conn:
                del self._conns[conn.peer_id]
                self._peer_codecs.pop(conn.peer_id, None)
                log_event(
                    _log, logging.DEBUG, "connection_closed", peer=conn.peer_id
                )
            with contextlib.suppress(Exception):
                writer.close()

    def _enqueue(self, message: Message) -> None:
        """Loop-thread only: queue one message and poke the writer."""
        if self._closed:
            return
        dest = message.to
        queue = self._queues.get(dest)
        if queue is None:
            queue = SendQueue(dest, self.config)
            self._queues[dest] = queue
        # Burst mode never consults the coalescing deadline, so skip the
        # clock read on the hot path.
        now = self._now() if self.config.max_delay > 0 else 0.0
        outcome = queue.push(message, now)
        if outcome == SendQueue.OVERFLOW:
            self._on_overflow(queue, message)
            return
        if outcome == SendQueue.FLUSH:
            event = self._flush_events.get(dest)
            if event is not None:
                event.set()
        self._dirty.add(dest)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush_dirty)

    def _codec_for(self, dest: str) -> Codec:
        codec = self._peer_codecs.get(dest)
        return codec if codec is not None else self._codec

    def _encode_payload(
        self, dest: str, items: List[Tuple[Message, float]]
    ) -> Tuple[bytes, Optional[List[int]]]:
        """One popped batch as wire bytes (loop-thread only).

        Returns ``(payload, sizes)``: per-message frame sizes when the
        batch leaves as concatenated frames, or ``None`` when it leaves
        as one batch envelope (whose shared header bytes have no exact
        per-message attribution).
        """
        codec = self._codec_for(dest)
        if self._wire_batching and len(items) > 1:
            batch = getattr(codec, "encode_batch", None)
            if batch is not None:
                return batch([message for message, _ in items]), None
        frames = [codec.encode(message) for message, _ in items]
        return b"".join(frames), [len(frame) for frame in frames]

    def _record_flush(
        self,
        dest: str,
        items: List[Tuple[Message, float]],
        payload: bytes,
        sizes: Optional[List[int]],
    ) -> None:
        """Account one successfully written batch in :attr:`stats`."""
        if sizes is None:
            messages = [message for message, _ in items]
            self._stats.record_many(messages, len(payload), dest)
            self._stats.record_envelope(len(messages), len(payload))
        else:
            for (message, _), size in zip(items, sizes):
                self._stats.record(message, size, dest)
        self._stats.record_batch(len(items))

    def _drop_size(self, dest: str, message: Message) -> int:
        """Byte accounting for a message dropped before any write (cold
        path; the per-codec frame memo makes repeats cheap)."""
        return self._codec_for(dest).wire_size(message)

    def _flush_dirty(self) -> None:
        """End-of-burst inline flush (loop-thread only).

        ``_enqueue`` collects touched destinations and schedules one run
        of this per loop burst: every send the current handler burst
        produced is already queued by the time the callback fires, so
        each destination's accumulation is written with a plain
        non-blocking ``write()`` — no per-destination task spawn, no
        extra scheduler hops.  Destinations that need to wait (no
        connection yet, retry backoff in progress, a coalescing window
        still open, or a swollen kernel write buffer) are handed to a
        writer task instead, which is where all sleeping happens.
        """
        self._flush_scheduled = False
        dirty, self._dirty = self._dirty, set()
        for dest in dirty:
            queue = self._queues.get(dest)
            if queue is None or not len(queue):
                continue
            if queue.attempts:
                self._kick_writer(dest)
                continue
            if (
                self.config.max_delay > 0
                and len(queue) < self.config.max_batch
            ):
                self._kick_writer(dest)  # wait out the deadline
                continue
            conn = self._conns.get(dest)
            if conn is None:
                self._kick_writer(dest)  # park in retry backoff
                continue
            while len(queue) and (
                self.config.max_delay <= 0
                or len(queue) >= self.config.max_batch
            ):
                if (
                    conn.writer.transport.get_write_buffer_size()
                    > _INLINE_BUFFER_LIMIT
                ):
                    self._kick_writer(dest)  # drain under backpressure
                    break
                items = queue.pop_batch()
                payload, sizes = self._encode_payload(dest, items)
                try:
                    conn.writer.write(payload)
                except (ConnectionError, OSError) as exc:
                    queue.requeue_front(items)
                    self._kick_writer(dest)
                    log_event(
                        _log,
                        logging.INFO,
                        "write_failed",
                        destination=dest,
                        batch=len(items),
                        error=type(exc).__name__,
                    )
                    break
                self._record_flush(dest, items, payload, sizes)
            else:
                if len(queue):
                    self._kick_writer(dest)  # deadline remainder
            if not self._read_gate.is_set() and queue.below_resume_level():
                self._read_gate.set()

    def _on_overflow(self, queue: SendQueue, message: Message) -> None:
        policy = self.config.backpressure
        dest = queue.destination
        if policy == "drop":
            self._stats.record_drop(
                message, self._drop_size(dest, message), reason=DROP_BACKPRESSURE
            )
            log_event(
                _log,
                logging.WARNING,
                "send_queue_overflow",
                destination=queue.destination,
                policy=policy,
                kind=message.kind,
            )
        elif policy == "block":
            # Keep the message, throttle intake until the queue drains.
            queue.force_push(message, self._now())
            self._read_gate.clear()
            self._kick_writer(queue.destination)
            log_event(
                _log,
                logging.INFO,
                "read_gate_closed",
                destination=queue.destination,
                queued=len(queue),
            )
        else:  # disconnect: evict the slow consumer
            self._stats.record_drop(
                message, self._drop_size(dest, message), reason=DROP_DISCONNECTED
            )
            dropped_count = 1
            for dropped in queue.drain_all():
                self._stats.record_drop(
                    dropped, self._drop_size(dest, dropped), reason=DROP_DISCONNECTED
                )
                dropped_count += 1
            conn = self._conns.pop(queue.destination, None)
            if conn is not None:
                with contextlib.suppress(Exception):
                    conn.writer.close()
            log_event(
                _log,
                logging.WARNING,
                "slow_consumer_evicted",
                destination=queue.destination,
                dropped=dropped_count,
            )

    def _kick_writer(self, dest: str) -> None:
        """Ensure a writer task is draining *dest*'s queue."""
        task = self._writer_tasks.get(dest)
        if task is not None and not task.done():
            return
        queue = self._queues.get(dest)
        if queue is None or not len(queue):
            return
        self._writer_tasks[dest] = self._loop.create_task(
            self._writer_loop(dest, queue)
        )

    async def _writer_loop(self, dest: str, queue: SendQueue) -> None:
        """Drain one destination's queue: batch, write, retry, drop.

        The task exits when the queue empties; the next enqueue spawns a
        fresh one.  ``await writer.drain()`` propagates the kernel's TCP
        backpressure up into the queue bound.
        """
        try:
            while len(queue) and not self._closed:
                if (
                    self.config.max_delay > 0
                    and len(queue) < self.config.max_batch
                ):
                    # Nagle-style deadline: wait out the coalescing window
                    # (or until a full batch accumulates).
                    deadline = queue.deadline()
                    remaining = (
                        deadline - self._now() if deadline is not None else 0
                    )
                    if remaining > 0:
                        # Sleep out the window, but let a full batch cut
                        # it short (a push to max_batch sets the event).
                        event = self._flush_events.setdefault(
                            dest, asyncio.Event()
                        )
                        event.clear()
                        with contextlib.suppress(asyncio.TimeoutError):
                            await asyncio.wait_for(event.wait(), remaining)
                else:
                    # Burst mode: yield once so the handler burst that is
                    # currently running can finish filling the queue.
                    await asyncio.sleep(0)
                conn = self._conns.get(dest)
                if conn is None:
                    if not await self._backoff_or_drop(queue):
                        continue  # dropped everything; queue may refill
                    continue
                items = queue.pop_batch()
                payload, sizes = self._encode_payload(dest, items)
                try:
                    conn.writer.write(payload)
                    await conn.writer.drain()
                except (ConnectionError, OSError) as exc:
                    # The write may have partially left: retrying can
                    # duplicate delivery, which idempotent msg ids make
                    # safe.  Put the batch back and back off.
                    log_event(
                        _log,
                        logging.INFO,
                        "write_failed",
                        destination=dest,
                        batch=len(items),
                        error=type(exc).__name__,
                    )
                    queue.requeue_front(items)
                    if not await self._backoff_or_drop(queue):
                        continue
                    continue
                queue.attempts = 0
                self._record_flush(dest, items, payload, sizes)
                if not self._read_gate.is_set() and queue.below_resume_level():
                    self._read_gate.set()
        except asyncio.CancelledError:
            pass
        finally:
            self._writer_tasks.pop(dest, None)
            # A race window: messages enqueued after the final emptiness
            # check but before the pop above would strand; re-kick.
            if not self._closed and len(queue):
                self._kick_writer(dest)

    async def _backoff_or_drop(self, queue: SendQueue) -> bool:
        """Handle one failed delivery attempt for *queue*'s head batch.

        Returns True when the batch was dropped (budget exhausted); False
        when a backoff was slept and delivery should be retried.
        """
        queue.attempts += 1
        delay = self._retry.delay(queue.attempts)
        if delay is None:
            dropped = 0
            for message in queue.drain_all():
                self._stats.record_drop(
                    message,
                    self._drop_size(queue.destination, message),
                    reason=DROP_UNDELIVERABLE,
                )
                dropped += 1
            if not self._read_gate.is_set():
                self._read_gate.set()
            log_event(
                _log,
                logging.WARNING,
                "batch_undeliverable",
                destination=queue.destination,
                dropped=dropped,
                attempts=queue.attempts,
            )
            return True
        self._stats.record_retry()
        log_event(
            _log,
            logging.DEBUG,
            "delivery_retry",
            destination=queue.destination,
            attempt=queue.attempts,
            delay=delay,
        )
        await asyncio.sleep(delay)
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def connections(self) -> Tuple[str, ...]:
        """Peer ids with a live connection (loop-thread consistent view)."""
        return tuple(self._conns)

    def pending(self, destination: str) -> int:
        """Messages queued but not yet written for *destination*."""
        queue = self._queues.get(destination)
        return len(queue) if queue is not None else 0


class AioClientTransport(TcpTransportBase):
    """An application instance's server connection, serviced by a shared
    event loop.

    The thread-per-connection client (:class:`~repro.net.tcp.TcpClientTransport`)
    costs one reader thread per instance; a 64-instance in-process
    deployment therefore runs 64 reader threads beside the host's.  This
    client instead parks its connection on an event loop — normally the
    :class:`~repro.server.runtime.AsyncServerRuntime`'s own, so one
    thread services every connection of the whole deployment.

    The serialization contract is unchanged: the endpoint handler runs
    under the transport condition (:meth:`TcpTransportBase.recv` shape),
    application threads synchronize through ``guard``/``drive``, and the
    wire format is the shared length-prefixed codec.  :meth:`send` may be
    called from any thread, including the loop thread itself (a handler
    answering a broadcast): frames are always handed to the loop and
    written there, never from the caller.

    Must be constructed from outside the loop thread (the constructor
    blocks on the connection being established).
    """

    def __init__(
        self,
        local_id: str,
        handler: MessageHandler,
        host: str,
        port: int,
        *,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        connect_timeout: float = 5.0,
        codec: object = "json",
    ):
        super().__init__(local_id, handler, codec=codec)
        self._owns_loop = loop is None
        if loop is None:
            self._loop = asyncio.new_event_loop()
            self._loop_thread: Optional[threading.Thread] = threading.Thread(
                target=self._loop.run_forever,
                name=f"aio-client-{local_id}",
                daemon=True,
            )
            self._loop_thread.start()
        else:
            self._loop = loop
            self._loop_thread = None

        async def _bootstrap() -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
            reader, writer = await asyncio.open_connection(host, port)
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return reader, writer

        self._stream_reader, self._writer = asyncio.run_coroutine_threadsafe(
            _bootstrap(), self._loop
        ).result(connect_timeout)
        self._reader_future = asyncio.run_coroutine_threadsafe(
            self._read_loop(), self._loop
        )

    def send(self, message: Message) -> None:
        if self._closed:
            raise TransportClosedError(
                f"client transport {self._local_id!r} is closed"
            )
        frame = self._codec.encode(message)
        try:
            self._loop.call_soon_threadsafe(self._write_frame, frame)
        except RuntimeError as exc:  # loop shut down underneath us
            raise DeliveryError(f"send to server failed: {exc}") from exc
        self.stats.record(message, len(frame), "server")

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()

        def _shutdown() -> None:
            with contextlib.suppress(Exception):
                self._writer.close()
            if self._owns_loop:
                self._loop.call_soon(self._loop.stop)

        if self._loop.is_running():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(_shutdown)
            if self._owns_loop and self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)

    # Loop internals ----------------------------------------------------

    def _write_frame(self, frame: bytes) -> None:
        if self._closed:
            return
        with contextlib.suppress(ConnectionError, OSError):
            self._writer.write(frame)

    async def _read_loop(self) -> None:
        decoder = StreamDecoder()
        try:
            while not self._closed:
                data = await self._stream_reader.read(65536)
                if not data:
                    break
                messages = decoder.feed(data)
                if not messages:
                    continue
                # One guard acquisition per chunk (same dispatch shape as
                # the host side): the instance handler never sees
                # concurrent calls, and application threads waiting in
                # ``drive`` wake once per burst.
                with self._cond:
                    if self._closed:
                        break
                    for message in messages:
                        self._handler(message)
                    self._cond.notify_all()
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            if not self._closed:
                log_event(
                    _log,
                    logging.WARNING,
                    "client_connection_lost",
                    local_id=self._local_id,
                    error=type(exc).__name__,
                )
        except asyncio.CancelledError:
            pass
        finally:
            with self._cond:
                self._cond.notify_all()
