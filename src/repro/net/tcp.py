"""Real-socket transport: the protocol over TCP.

Topology is a star, exactly like the paper's implementation: every
application instance holds one TCP connection to the central server; all
communication is mediated by the server ("these messages are directly
handled by our communication server", §3.4).

Threading model
---------------
* The host side runs an accept thread plus one reader thread per
  connection; the client side runs one reader thread.
* Each endpoint's message handler is *serialized*: the transport owns a
  condition variable and invokes the handler under its lock, so the sans-IO
  cores never see concurrent calls.  Application threads synchronize with
  the same lock through :meth:`TcpTransportBase.guard` and block in
  :meth:`drive`, which waits on the condition (released while waiting, so
  the reader thread can make progress).
"""

from __future__ import annotations

import contextlib
import logging
import socket
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import DeliveryError, TransportClosedError
from repro.net.codec import Codec, StreamDecoder, encode_batch_for, get_codec
from repro.net.message import Message
from repro.net.transport import (
    DROP_DETACHED,
    MessageHandler,
    TrafficStats,
    Transport,
)
from repro.obs.log import get_logger, log_event

_log = get_logger("net.tcp")


class TcpTransportBase(Transport):
    """Shared machinery of the host and client TCP transports."""

    def __init__(
        self,
        local_id: str,
        handler: MessageHandler,
        *,
        codec: object = "json",
    ):
        self._local_id = local_id
        self._handler = handler
        self._codec: Codec = get_codec(codec)
        self._cond = threading.Condition(threading.RLock())
        self._closed = False
        self._stats = TrafficStats()

    @property
    def local_id(self) -> str:
        return self._local_id

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    @contextlib.contextmanager
    def guard(self) -> Iterator[None]:
        """Serialize application-thread access with the reader thread(s)."""
        with self._cond:
            yield

    def recv(self, message: Message) -> None:
        """Run the endpoint handler under the serialization lock."""
        with self._cond:
            if self._closed:
                return
            self._handler(message)
            self._cond.notify_all()

    def drive(self, predicate: Callable[[], bool], timeout: float = 5.0) -> bool:
        end = time.monotonic() + timeout
        with self._cond:
            while not predicate():
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return bool(predicate())
                self._cond.wait(remaining)
            return True

    @property
    def codec(self) -> Codec:
        """This endpoint's outbound codec (inbound is auto-detected)."""
        return self._codec

    def _send_on(
        self,
        sock: socket.socket,
        message: Message,
        codec: Optional[Codec] = None,
    ) -> int:
        frame = (codec if codec is not None else self._codec).encode(message)
        sock.sendall(frame)
        return len(frame)


class TcpHostTransport(TcpTransportBase):
    """The server's transport: listens, accepts, routes by instance id.

    A connection is associated with an instance id on the first message it
    sends (normally REGISTER); from then on the server can address that
    instance by id.

    With ``wire_batching`` on, the sends a handler burst produces while
    one inbound chunk is dispatched are coalesced per destination and
    flushed as batch envelopes (one ``sendall`` per destination) instead
    of one ``sendall`` per message.  A send that fails during that
    deferred flush is dropped and attributed in :attr:`stats` rather
    than raised (the handler that produced it has already returned).
    """

    def __init__(
        self,
        handler: MessageHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        local_id: str = "server",
        backlog: int = 32,
        codec: object = "json",
        wire_batching: bool = False,
    ):
        super().__init__(local_id, handler, codec=codec)
        self._wire_batching = bool(wire_batching)
        #: While a reader thread dispatches a chunk under wire batching,
        #: host sends land here instead of going straight to a socket
        #: (guarded by ``self._cond``; None means "no burst active").
        self._burst: Optional[List[Message]] = None
        #: Per-peer codec negotiation: each peer is answered in the codec
        #: of its own frames (auto-detected by the StreamDecoder), so a
        #: mixed fleet of JSON and binary clients shares one server.
        self._peer_codecs: Dict[str, Codec] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.address = self._listener.getsockname()
        self._conns: Dict[str, socket.socket] = {}
        self._threads: list = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="tcp-accept", daemon=True
        )
        self._accept_thread.start()

    def send(self, message: Message) -> None:
        if self._closed:
            raise TransportClosedError("host transport is closed")
        target = message.to
        with self._cond:
            if self._burst is not None:
                self._burst.append(message)
                return
            sock = self._conns.get(target)
            codec = self._peer_codecs.get(target)
        if sock is None:
            raise DeliveryError(f"no connection for instance {target!r}")
        try:
            size = self._send_on(sock, message, codec)
        except OSError as exc:
            raise DeliveryError(f"send to {target!r} failed: {exc}") from exc
        self.stats.record(message, size, target)

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns.values())
            self._conns.clear()
            self._peer_codecs.clear()
        with contextlib.suppress(OSError):
            self._listener.close()
        for sock in conns:
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()

    # Internal ----------------------------------------------------------

    def connections(self) -> Tuple[str, ...]:
        """Peer ids with a live connection (same shape as the aio host)."""
        with self._cond:
            return tuple(self._conns)

    @contextlib.contextmanager
    def _burst_sends(self) -> Iterator[None]:
        """Coalesce every host send issued inside the block (wire
        batching only; a plain no-op otherwise).

        The first thread through arms the buffer and owns the flush;
        concurrent reader threads just dispatch — their sends land in
        the owner's buffer and leave with its flush.
        """
        if not self._wire_batching:
            yield
            return
        with self._cond:
            owner = self._burst is None
            if owner:
                self._burst = []
        try:
            yield
        finally:
            if owner:
                with self._cond:
                    pending, self._burst = self._burst, None
                if pending:
                    # Flush outside the lock: sendall may block, and the
                    # handlers that produced these messages already ran.
                    self._flush_burst(pending)

    def _flush_burst(self, pending: List[Message]) -> None:
        """Write one coalesced burst: one envelope per destination."""
        by_dest: Dict[str, List[Message]] = {}
        for message in pending:
            by_dest.setdefault(message.to, []).append(message)
        for dest, messages in by_dest.items():
            with self._cond:
                sock = self._conns.get(dest)
                codec = self._peer_codecs.get(dest)
            if codec is None:
                codec = self._codec
            if sock is None:
                self._drop_burst(dest, messages, codec, "no connection")
                continue
            payload = encode_batch_for(codec, messages)
            try:
                sock.sendall(payload)
            except OSError as exc:
                self._drop_burst(dest, messages, codec, type(exc).__name__)
                continue
            if len(messages) > 1:
                self._stats.record_many(messages, len(payload), dest)
                self._stats.record_envelope(len(messages), len(payload))
            else:
                self._stats.record(messages[0], len(payload), dest)
            self._stats.record_batch(len(messages))

    def _drop_burst(
        self, dest: str, messages: List[Message], codec: Codec, why: str
    ) -> None:
        """Account a burst that could not be written (the producing
        handlers have returned, so there is nobody left to raise to)."""
        for message in messages:
            self._stats.record_drop(
                message, codec.wire_size(message), reason=DROP_DETACHED
            )
        log_event(
            _log,
            logging.WARNING,
            "burst_flush_failed",
            destination=dest,
            dropped=len(messages),
            error=why,
        )

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._reader_loop, args=(sock,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _reader_loop(self, sock: socket.socket) -> None:
        decoder = StreamDecoder()
        peer_id: Optional[str] = None
        codec_name: Optional[str] = None
        try:
            while not self._closed:
                data = sock.recv(65536)
                if not data:
                    break
                messages = decoder.feed(data)
                if not messages:
                    continue
                if peer_id is None:
                    peer_id = messages[0].sender
                    with self._cond:
                        self._conns[peer_id] = sock
                if decoder.last_codec != codec_name:
                    # Negotiation: answer this peer in its own codec.
                    codec_name = decoder.last_codec
                    with self._cond:
                        self._peer_codecs[peer_id] = get_codec(codec_name)
                with self._burst_sends():
                    for message in messages:
                        self.recv(message)
        except OSError as exc:
            if not self._closed:
                log_event(
                    _log,
                    logging.WARNING,
                    "connection_error",
                    peer=peer_id,
                    error=type(exc).__name__,
                )
        finally:
            if peer_id is not None:
                with self._cond:
                    if self._conns.get(peer_id) is sock:
                        del self._conns[peer_id]
                        self._peer_codecs.pop(peer_id, None)
                log_event(_log, logging.DEBUG, "connection_closed", peer=peer_id)
            with contextlib.suppress(OSError):
                sock.close()


class TcpClientTransport(TcpTransportBase):
    """An application instance's connection to the central server."""

    def __init__(
        self,
        local_id: str,
        handler: MessageHandler,
        host: str,
        port: int,
        *,
        connect_timeout: float = 5.0,
        codec: object = "json",
    ):
        super().__init__(local_id, handler, codec=codec)
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = threading.Thread(
            target=self._reader_loop, name=f"tcp-client-{local_id}", daemon=True
        )
        self._reader.start()

    def send(self, message: Message) -> None:
        if self._closed:
            raise TransportClosedError(
                f"client transport {self._local_id!r} is closed"
            )
        try:
            size = self._send_on(self._sock, message)
        except OSError as exc:
            raise DeliveryError(f"send to server failed: {exc}") from exc
        self.stats.record(message, size, "server")

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._sock.close()

    # Internal ----------------------------------------------------------

    def _reader_loop(self) -> None:
        decoder = StreamDecoder()
        try:
            while not self._closed:
                data = self._sock.recv(65536)
                if not data:
                    break
                for message in decoder.feed(data):
                    self.recv(message)
        except OSError as exc:
            if not self._closed:
                log_event(
                    _log,
                    logging.WARNING,
                    "client_connection_lost",
                    local_id=self._local_id,
                    error=type(exc).__name__,
                )
        finally:
            with self._cond:
                self._cond.notify_all()
