"""Wire codecs for protocol messages: framing, the :class:`Codec`
contract, and the codec registry.

Every frame on every transport is a 4-byte big-endian length header
followed by one message *body*.  Two body encodings ship with the
package, selected per :class:`~repro.session.Session` via
``SessionConfig(codec=...)`` / ``REPRO_CODEC`` (docs/PROTOCOL.md):

``"json"``
    A UTF-8 JSON document — the debugging-friendly fallback and the
    historical wire format.  :class:`JsonCodec`.
``"binary"``
    A struct-packed envelope with interned kind/attribute names and
    varint lengths (:mod:`repro.net.binary`) — markedly smaller and the
    default target for high fan-out deployments.

The first body byte discriminates the encoding (``{`` opens a JSON
document; :data:`repro.net.binary.MAGIC` opens a binary envelope, and is
deliberately a UTF-8 continuation byte no JSON body can start with), so
**decoding is codec-agnostic**: :class:`StreamDecoder` and :func:`decode`
accept any mix of frames on one connection.  That is the whole version
negotiation — a receiver understands every codec it knows, and the host
transports answer each peer in the codec of the peer's own frames, so
mixed fleets and rolling upgrades need no handshake round-trip.

A third discriminator byte, :data:`ENVELOPE_MAGIC`, opens a **batch
envelope**: one frame carrying several message bodies (count plus sized
bodies), produced by :meth:`Codec.encode_batch` when the wire-batching
knob is on (``SessionConfig(wire_batching=True)`` /
``REPRO_WIRE_BATCHING``).  Envelopes exist because the flush path's unit
of work is the batch: one frame header, one length check and one socket
write amortize over every coalesced message, and the binary codec's
string/payload memos stay hot across the whole batch.  The decoder
splits envelopes transparently — each member body is a standard codec
body, dispatched by its own first byte — so envelope senders, legacy
per-message senders and mixed-codec fleets keep interoperating on one
port with no handshake (docs/PROTOCOL.md).

Third-party codecs implement the :class:`Codec` protocol and register
with :func:`register_codec`; transports resolve names through
:func:`get_codec`.

The module-level :func:`encode` / :func:`wire_size` helpers remain the
plain-JSON entry points (the byte-accounting baseline of the committed
benchmarks); :func:`decode` accepts frames from any registered codec.
"""

from __future__ import annotations

import importlib
import json
import os
import struct
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.errors import CodecError
from repro.net.message import Message

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: Upper bound on one frame; protects the decoder from corrupt headers.
MAX_FRAME_SIZE = 16 * 1024 * 1024

#: Environment knob naming the codec every Session defaults to.
CODEC_ENV = "REPRO_CODEC"

#: First body byte of a batch envelope (several message bodies in one
#: frame).  Like the binary magic it is a UTF-8 continuation byte, so no
#: JSON body can begin with it, and it is distinct from
#: :data:`repro.net.binary.MAGIC` so a plain binary body is never
#: mistaken for an envelope.
ENVELOPE_MAGIC = 0xB6

#: Batch-envelope layout version (bumped on incompatible change).
ENVELOPE_VERSION = 1

#: Environment knob turning batch envelopes on for every Session.
WIRE_BATCHING_ENV = "REPRO_WIRE_BATCHING"


def default_wire_batching() -> bool:
    """Default for ``SessionConfig.wire_batching``: the environment knob."""
    value = os.environ.get(WIRE_BATCHING_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def _write_uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _read_uvarint(body, pos: int) -> "Tuple[int, int]":
    shift = 0
    result = 0
    while True:
        try:
            byte = body[pos]
        except IndexError:
            raise CodecError("truncated varint in batch envelope") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


@runtime_checkable
class Codec(Protocol):
    """The contract a wire codec implements.

    A codec owns one *body* encoding; the 4-byte length framing is shared
    by all of them (so :class:`StreamDecoder` can split any stream).  The
    first body byte must unambiguously identify the codec — see
    :func:`decode_body` for the dispatch rule.
    """

    #: Registry name (``SessionConfig(codec=<name>)``).
    name: str

    def encode(self, message: Message) -> bytes:
        """Serialize *message* into one complete length-prefixed frame."""
        ...

    def encode_batch(self, messages: Sequence[Message]) -> bytes:
        """Serialize *messages* into one batch-envelope frame.

        The in-tree codecs implement this; transports fall back to
        concatenated per-message frames for third-party codecs that
        predate it (see :func:`encode_batch_for`).
        """
        ...

    def decode_body(self, body: bytes) -> Message:
        """Inverse of :meth:`encode` for one frame body (header stripped)."""
        ...

    def wire_size(self, message: Message) -> int:
        """Bytes :meth:`encode` would produce (used for byte accounting)."""
        ...


class JsonCodec:
    """Length-prefixed UTF-8 JSON — the debugging-friendly fallback.

    The frame body is the compact, sorted-key document
    :meth:`Message.wire_body` produces; the frame is cached on the
    (immutable) message keyed by codec name, so retries, replays and
    broadcasts of the same object serialize once per codec.
    """

    name = "json"

    def encode(self, message: Message) -> bytes:
        frames = message._frames
        if frames is None:
            frames = {}
            object.__setattr__(message, "_frames", frames)
        else:
            cached = frames.get("json")
            if cached is not None:
                return cached
        try:
            body = message.wire_body().encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot encode message: {exc}") from exc
        if len(body) > MAX_FRAME_SIZE:
            raise CodecError(
                f"message of {len(body)} bytes exceeds MAX_FRAME_SIZE"
            )
        frame = _HEADER.pack(len(body)) + body
        frames["json"] = frame
        return frame

    def encode_batch(self, messages: Sequence[Message]) -> bytes:
        """One batch-envelope frame holding every message's JSON body.

        A single-message batch degenerates to the plain per-message
        frame — the envelope only pays for itself once it amortizes.
        """
        if not messages:
            raise CodecError("encode_batch needs at least one message")
        if len(messages) == 1:
            return self.encode(messages[0])
        out = bytearray(HEADER_SIZE)
        out.append(ENVELOPE_MAGIC)
        out.append(ENVELOPE_VERSION)
        _write_uvarint(out, len(messages))
        append = out.append
        for message in messages:
            frames = message._frames
            cached = frames.get("json") if frames is not None else None
            if cached is not None:
                body = memoryview(cached)[HEADER_SIZE:]
            else:
                try:
                    body = message.wire_body().encode("utf-8")
                except (TypeError, ValueError) as exc:
                    raise CodecError(f"cannot encode message: {exc}") from exc
            # Minimal uvarint, inlined: one or two appends covers every
            # realistic member; the helper handles the giant tail.
            blen = len(body)
            if blen < 0x80:
                append(blen)
            elif blen < 0x4000:
                append((blen & 0x7F) | 0x80)
                append(blen >> 7)
            else:
                _write_uvarint(out, blen)
            out += body
        body_len = len(out) - HEADER_SIZE
        if body_len > MAX_FRAME_SIZE:
            raise CodecError(
                f"batch of {body_len} bytes exceeds MAX_FRAME_SIZE"
            )
        _HEADER.pack_into(out, 0, body_len)
        return bytes(out)

    def decode_body(self, body: bytes) -> Message:
        if isinstance(body, memoryview):  # envelope members arrive as views
            body = bytes(body)
        try:
            data = json.loads(
                body.decode("utf-8")
                if isinstance(body, (bytes, bytearray))
                else body
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"cannot decode message body: {exc}") from exc
        if not isinstance(data, dict):
            raise CodecError("message body is not a JSON object")
        return Message.from_wire(data)

    def wire_size(self, message: Message) -> int:
        return len(self.encode(message))


#: The process-wide codec registry.  Built-ins register here at import;
#: third-party codecs add themselves with :func:`register_codec`.
_CODECS: Dict[str, Codec] = {}

#: Lazily-imported modules that self-register a codec on import, keyed by
#: the codec name they provide (the binary codec stays un-imported until
#: a binary frame or an explicit ``codec="binary"`` asks for it).
_LAZY_CODECS: Dict[str, str] = {"binary": "repro.net.binary"}


def register_codec(codec: Codec, *, replace: bool = False) -> None:
    """Register *codec* under ``codec.name``.

    Registering an already-known name raises unless *replace* — guarding
    against two packages silently fighting over one name.
    """
    name = codec.name
    if not replace and name in _CODECS and _CODECS[name] is not codec:
        raise ValueError(f"codec {name!r} is already registered")
    _CODECS[name] = codec


def get_codec(name) -> Codec:
    """Resolve a codec by registry name (or pass a ready codec through)."""
    if not isinstance(name, str):
        return name  # already a Codec instance
    codec = _CODECS.get(name)
    if codec is None:
        lazy = _LAZY_CODECS.get(name)
        if lazy is not None:
            importlib.import_module(lazy)
            codec = _CODECS.get(name)
    if codec is None:
        known = sorted(set(_CODECS) | set(_LAZY_CODECS))
        raise CodecError(
            f"unknown codec {name!r}; registered codecs: {known}"
        )
    return codec


def codec_names() -> tuple:
    """Every resolvable codec name (registered plus lazy built-ins)."""
    return tuple(sorted(set(_CODECS) | set(_LAZY_CODECS)))


def default_codec_name() -> str:
    """The codec name Sessions default to: ``REPRO_CODEC`` or ``json``."""
    value = os.environ.get(CODEC_ENV, "").strip().lower()
    return value if value else "json"


def default_codec() -> Codec:
    """The resolved default codec (see :func:`default_codec_name`)."""
    return get_codec(default_codec_name())


JSON_CODEC = JsonCodec()
register_codec(JSON_CODEC)


# ---------------------------------------------------------------------------
# Codec-agnostic decoding
# ---------------------------------------------------------------------------

#: First bytes a JSON body may start with (our encoder emits ``{``; the
#: whitespace forms tolerate third-party pretty-printers).
_JSON_OPENERS = frozenset(b"{ \t\r\n")


def _codec_for_body(body) -> Codec:
    """The codec whose body encoding *body* opens with."""
    if not body:
        raise CodecError("empty frame body")
    first = body[0]
    if first in _JSON_OPENERS:
        return JSON_CODEC
    from repro.net import binary  # self-registers on first import

    if first == binary.MAGIC:
        return _CODECS["binary"]
    if first == ENVELOPE_MAGIC:
        raise CodecError(
            "frame body is a batch envelope, not a single message; "
            "use StreamDecoder or decode_batch"
        )
    raise CodecError(
        f"unrecognized frame body (first byte 0x{first:02x}); "
        f"known codecs: {codec_names()}"
    )


def decode_body(body: bytes) -> Message:
    """Decode one frame body, dispatching on its leading byte."""
    return _codec_for_body(body).decode_body(body)


def _decode_envelope(body, out: List[Message]) -> Optional[Codec]:
    """Split one envelope body into *out*; returns the last member codec.

    Members are standard codec bodies behind uvarint length prefixes, so
    one envelope may even mix codecs.  Bodies are handed to the member
    codec as memoryview slices — one copy for the envelope, zero per
    member.
    """
    if len(body) < 2:
        raise CodecError("truncated batch envelope")
    version = body[1]
    if version != ENVELOPE_VERSION:
        raise CodecError(
            f"unsupported batch envelope version {version} "
            f"(this build speaks version {ENVELOPE_VERSION})"
        )
    count, pos = _read_uvarint(body, 2)
    size = len(body)
    view = memoryview(body)
    last: Optional[Codec] = None
    for _ in range(count):
        length, pos = _read_uvarint(body, pos)
        end = pos + length
        if end > size:
            raise CodecError("truncated batch envelope member")
        member = view[pos:end]
        codec = _codec_for_body(member)
        out.append(codec.decode_body(member))
        last = codec
        pos = end
    if pos != size:
        raise CodecError("trailing bytes after batch envelope")
    return last


def encode_batch_for(codec: Codec, messages: Sequence[Message]) -> bytes:
    """*messages* as one envelope frame under *codec*.

    Falls back to concatenated per-message frames when the codec predates
    :meth:`Codec.encode_batch` (third-party codecs keep working, they
    just do not benefit).
    """
    batch = getattr(codec, "encode_batch", None)
    if batch is not None:
        return batch(messages)
    return b"".join(codec.encode(m) for m in messages)


# ---------------------------------------------------------------------------
# Module-level helpers (JSON entry points, kept for compatibility)
# ---------------------------------------------------------------------------


def encode(message: Message) -> bytes:
    """Serialize *message* into one length-prefixed JSON frame."""
    return JSON_CODEC.encode(message)


def decode(frame: bytes) -> Message:
    """Inverse of :meth:`Codec.encode` for exactly one complete frame.

    Accepts a frame from **any** registered codec — the body's first
    byte picks the decoder.
    """
    if len(frame) < HEADER_SIZE:
        raise CodecError("frame shorter than header")
    (length,) = _HEADER.unpack_from(frame)
    body = frame[HEADER_SIZE:]
    if len(body) != length:
        raise CodecError(
            f"frame length mismatch: header says {length}, got {len(body)}"
        )
    return decode_body(body)


def wire_size(message: Message) -> int:
    """Number of bytes the JSON codec would produce for *message*."""
    return len(JSON_CODEC.encode(message))


def encode_batch(messages: Sequence[Message]) -> bytes:
    """Serialize *messages* into one (JSON) batch-envelope frame."""
    return JSON_CODEC.encode_batch(messages)


def decode_batch(frame: bytes) -> List[Message]:
    """Decode one complete frame into its messages.

    The inverse of :func:`encode_batch` and of any codec's
    ``encode_batch`` — a batch envelope yields every member, a plain
    per-message frame yields a one-element list.
    """
    if len(frame) < HEADER_SIZE:
        raise CodecError("frame shorter than header")
    (length,) = _HEADER.unpack_from(frame)
    body = frame[HEADER_SIZE:]
    if len(body) != length:
        raise CodecError(
            f"frame length mismatch: header says {length}, got {len(body)}"
        )
    out: List[Message] = []
    if body and body[0] == ENVELOPE_MAGIC:
        _decode_envelope(bytes(body), out)
    else:
        out.append(decode_body(body))
    return out


class StreamDecoder:
    """Incremental decoder for a byte stream of concatenated frames.

    Feed arbitrary chunks with :meth:`feed`; complete messages come out of
    :meth:`messages`.  Used by the socket transports, whose reads do not
    align with frame boundaries.  Frames from different codecs may be
    interleaved freely on one stream — each body is dispatched by its
    leading byte — and :attr:`last_codec` names the codec of the most
    recently decoded frame, which the host transports use to answer a
    peer in its own encoding.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Name of the codec that produced the last decoded frame (None
        #: until the first complete frame arrives).
        self.last_codec: Optional[str] = None

    def feed(self, data: bytes) -> List[Message]:
        """Append *data*; return all messages completed by it."""
        buffer = self._buffer
        buffer.extend(data)
        out: List[Message] = []
        pos = 0
        size = len(buffer)
        # Scan complete frames by offset; the buffer is compacted once
        # per feed, not once per frame (which is quadratic in the number
        # of frames a chunk carries).
        while size - pos >= HEADER_SIZE:
            (length,) = _HEADER.unpack_from(buffer, pos)
            if length > MAX_FRAME_SIZE:
                raise CodecError(
                    f"frame of {length} bytes exceeds MAX_FRAME_SIZE"
                )
            end = pos + HEADER_SIZE + length
            if end > size:
                break
            body = buffer[pos + HEADER_SIZE : end]
            if body and body[0] == ENVELOPE_MAGIC:
                # A batch envelope: split it into its member messages.
                # (The slice above is already a copy, so member
                # memoryviews never pin the live buffer.)
                codec = _decode_envelope(bytes(body), out)
            else:
                codec = _codec_for_body(body)
                out.append(codec.decode_body(body))
            if codec is not None:
                self.last_codec = codec.name
            pos = end
        if pos:
            del buffer[:pos]
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


def encode_many(messages: Iterator[Message]) -> bytes:
    """Concatenate the (JSON) frames of several messages."""
    return b"".join(encode(m) for m in messages)
