"""Length-prefixed JSON codec for protocol messages.

The wire format is a 4-byte big-endian length header followed by a UTF-8
JSON document.  The same codec serves the TCP transport (real framing) and
the in-memory transport's byte accounting (message sizes feed the latency
model and the traffic statistics the benchmarks report).
"""

from __future__ import annotations

import json
import struct
from typing import Iterator, List, Optional

from repro.errors import CodecError
from repro.net.message import Message

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: Upper bound on one frame; protects the decoder from corrupt headers.
MAX_FRAME_SIZE = 16 * 1024 * 1024


def encode(message: Message) -> bytes:
    """Serialize *message* into one length-prefixed frame.

    The frame is cached on the (immutable) message, so retries and
    replays of the same object serialize once.
    """
    frame = message._frame
    if frame is not None:
        return frame
    try:
        body = message.wire_body().encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot encode message: {exc}") from exc
    if len(body) > MAX_FRAME_SIZE:
        raise CodecError(
            f"message of {len(body)} bytes exceeds MAX_FRAME_SIZE"
        )
    frame = _HEADER.pack(len(body)) + body
    object.__setattr__(message, "_frame", frame)
    return frame


def decode(frame: bytes) -> Message:
    """Inverse of :func:`encode` for exactly one complete frame."""
    if len(frame) < HEADER_SIZE:
        raise CodecError("frame shorter than header")
    (length,) = _HEADER.unpack_from(frame)
    body = frame[HEADER_SIZE:]
    if len(body) != length:
        raise CodecError(
            f"frame length mismatch: header says {length}, got {len(body)}"
        )
    return _decode_body(body)


def wire_size(message: Message) -> int:
    """Number of bytes :func:`encode` would produce for *message*."""
    return len(encode(message))


def _decode_body(body: bytes) -> Message:
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"cannot decode message body: {exc}") from exc
    if not isinstance(data, dict):
        raise CodecError("message body is not a JSON object")
    return Message.from_wire(data)


class StreamDecoder:
    """Incremental decoder for a byte stream of concatenated frames.

    Feed arbitrary chunks with :meth:`feed`; complete messages come out of
    :meth:`messages`.  Used by the TCP transport, whose reads do not align
    with frame boundaries.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Message]:
        """Append *data*; return all messages completed by it."""
        buffer = self._buffer
        buffer.extend(data)
        out: List[Message] = []
        pos = 0
        size = len(buffer)
        # Scan complete frames by offset; the buffer is compacted once
        # per feed, not once per frame (which is quadratic in the number
        # of frames a chunk carries).
        while size - pos >= HEADER_SIZE:
            (length,) = _HEADER.unpack_from(buffer, pos)
            if length > MAX_FRAME_SIZE:
                raise CodecError(
                    f"frame of {length} bytes exceeds MAX_FRAME_SIZE"
                )
            end = pos + HEADER_SIZE + length
            if end > size:
                break
            out.append(_decode_body(buffer[pos + HEADER_SIZE : end]))
            pos = end
        if pos:
            del buffer[:pos]
        return out

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


def encode_many(messages: Iterator[Message]) -> bytes:
    """Concatenate the frames of several messages."""
    return b"".join(encode(m) for m in messages)
