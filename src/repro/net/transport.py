"""Transport abstraction shared by the simulated, TCP and asyncio networks.

The server and the application instances are **sans-I/O state machines**:
they expose ``handle_message(Message)`` and emit messages through a
:class:`Transport` handle.  Three implementations exist:

* :class:`~repro.net.memory.MemoryNetwork` — deterministic discrete-event
  simulation with a latency model (the default for tests and benchmarks);
* :class:`~repro.net.tcp.TcpTransport` — real sockets, one thread per
  connection;
* :class:`~repro.net.aio.AioHostTransport` — real sockets on an asyncio
  event loop, with outbound batching, bounded per-client send queues and
  per-hop retry (see docs/RUNTIME.md).

The :class:`Transport` ABC is the explicit contract all of them implement:

``send``
    queue one outbound message for delivery to ``message.to``;
``recv``
    deliver one inbound message into the endpoint's handler (transports
    call this from their reader thread / task / pump loop — it is the
    single choke point through which every inbound message passes);
``close``
    detach the endpoint;
``stats``
    the :class:`TrafficStats` the transport accounts its traffic in.

Third-party transports need not subclass the ABC: anything matching the
:class:`TransportLike` structural protocol can be bound to a server or an
instance (``isinstance(obj, TransportLike)`` works at runtime).

Blocking request/reply interactions (CopyFrom, lock acquisition, …) are
expressed through :meth:`Transport.drive`: "make progress until *predicate*
becomes true or *timeout* elapses".  On the memory network this pumps the
event queue (no real waiting); on TCP it waits on a condition variable fed
by the receive thread.
"""

from __future__ import annotations

import abc
import contextlib
from collections import Counter
from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro.net.message import Message

MessageHandler = Callable[[Message], None]

#: Reserved endpoint id of the central server (or of a cluster front-end
#: posing as it).  An empty ``Message.to`` addresses this endpoint.
SERVER_ID = "server"

#: Reserved sender id of a cluster front-end router issuing internal
#: control traffic (shard migration).  Never a client instance id.
ROUTER_ID = "router"

# Canonical drop reasons, shared by every transport so single-server and
# cluster runs report the same attribution fields (``drops_by_reason``).
DROP_LOSS = "loss"                  # simulated wire loss
DROP_PARTITION = "partition"        # simulated network partition
DROP_DETACHED = "detached"          # receiver endpoint gone / closed socket
DROP_BACKPRESSURE = "backpressure"  # bounded send queue overflowed (policy=drop)
DROP_DISCONNECTED = "disconnected"  # slow consumer evicted (policy=disconnect)
DROP_UNDELIVERABLE = "undeliverable"  # per-hop retry budget exhausted


class TrafficStats:
    """Counters of protocol traffic, reported by every benchmark.

    Tracks message and byte counts globally, per message kind and per
    directed (sender, receiver) link; drops are attributed by kind *and*
    by reason (one of the ``DROP_*`` constants), and the batching runtime
    additionally accounts flushed batches and per-hop retries.  Every
    transport — memory, TCP, asyncio, cluster shard — owns one of these,
    so a single-server run reports exactly the same fields a sharded or
    batched deployment does; :meth:`merge` folds several into one
    cluster-wide snapshot.
    """

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.by_kind: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()
        self.by_link: Counter = Counter()
        self.dropped_by_kind: Counter = Counter()
        self.drops_by_reason: Counter = Counter()
        #: Outbound flushes (a batch of >= 1 coalesced messages).
        self.batches = 0
        #: Messages that left inside those batches.
        self.batched_messages = 0
        #: Per-hop delivery retries (see docs/RUNTIME.md).
        self.retries = 0
        #: Batch-envelope frames written (wire batching on; see
        #: docs/PROTOCOL.md).
        self.envelopes = 0
        #: Messages those envelopes carried.
        self.envelope_messages = 0
        #: Total envelope frame bytes (header + members).
        self.envelope_bytes = 0
        # Live histogram children, wired by register_into when an obs
        # registry is attached (None keeps record_envelope at two adds).
        self._fill_hist = None
        self._bytes_hist = None

    def record(self, message: Message, size: int, receiver: str) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += size
        self.by_link[(message.sender, receiver)] += 1

    def record_many(
        self, messages, total_bytes: int, receiver: str
    ) -> None:
        """Account a batch that left as *total_bytes* on the wire.

        The vectorized counterpart of per-message :meth:`record` for
        envelope flushes, where the shared frame bytes have no exact
        per-message split: bytes are apportioned evenly across the batch
        (the remainder goes to the first message's kind), so the totals
        are conserved exactly.
        """
        n = len(messages)
        if not n:
            return
        self.messages += n
        self.bytes += total_bytes
        kinds = Counter(m.kind for m in messages)
        self.by_kind.update(kinds)
        base, extra = divmod(total_bytes, n)
        for kind, count in kinds.items():
            self.bytes_by_kind[kind] += base * count
        if extra:
            self.bytes_by_kind[messages[0].kind] += extra
        self.by_link.update((m.sender, receiver) for m in messages)

    def record_drop(
        self,
        message: Optional[Message] = None,
        size: int = 0,
        *,
        reason: str = DROP_LOSS,
    ) -> None:
        """Count a lost message, attributing kind, size and *reason*."""
        self.dropped += 1
        self.dropped_bytes += size
        self.drops_by_reason[reason] += 1
        if message is not None:
            self.dropped_by_kind[message.kind] += 1

    def record_batch(self, n_messages: int) -> None:
        """Count one outbound flush carrying *n_messages* messages."""
        self.batches += 1
        self.batched_messages += n_messages

    def record_envelope(self, n_messages: int, n_bytes: int) -> None:
        """Count one batch-envelope frame of *n_messages* / *n_bytes*."""
        self.envelopes += 1
        self.envelope_messages += n_messages
        self.envelope_bytes += n_bytes
        if self._fill_hist is not None:
            self._fill_hist.observe(n_messages)
            self._bytes_hist.observe(n_bytes)

    def record_retry(self, attempts: int = 1) -> None:
        self.retries += attempts

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        """Fold *other*'s counters into this one (returns self).

        Aggregates per-shard / per-transport stats into one system-wide
        snapshot for benchmarks and the monitor tool.
        """
        self.messages += other.messages
        self.bytes += other.bytes
        self.dropped += other.dropped
        self.dropped_bytes += other.dropped_bytes
        self.by_kind.update(other.by_kind)
        self.bytes_by_kind.update(other.bytes_by_kind)
        self.by_link.update(other.by_link)
        self.dropped_by_kind.update(other.dropped_by_kind)
        self.drops_by_reason.update(other.drops_by_reason)
        self.batches += other.batches
        self.batched_messages += other.batched_messages
        self.retries += other.retries
        self.envelopes += other.envelopes
        self.envelope_messages += other.envelope_messages
        self.envelope_bytes += other.envelope_bytes
        return self

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict summary (stable keys, benchmark-friendly)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "dropped": self.dropped,
            "dropped_bytes": self.dropped_bytes,
            "by_kind": dict(self.by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
            "by_link": {f"{a}->{b}": n for (a, b), n in self.by_link.items()},
            "dropped_by_kind": dict(self.dropped_by_kind),
            "drops_by_reason": dict(self.drops_by_reason),
            "batches": self.batches,
            "batched_messages": self.batched_messages,
            "retries": self.retries,
            "envelopes": self.envelopes,
            "envelope_messages": self.envelope_messages,
            "envelope_bytes": self.envelope_bytes,
        }

    def register_into(self, registry, **labels: str) -> None:
        """Expose these counters through an obs metrics registry.

        Registers a pull-time collector (see
        :meth:`repro.obs.metrics.MetricsRegistry.register_collector`) so
        the live values appear in every ``collect()`` without adding any
        work to :meth:`record` on the hot path.  *labels* distinguish
        several transports in one deployment (e.g. ``shard="shard-0"``).
        """
        from repro.obs.metrics import Sample, log_buckets

        base = tuple(sorted(labels.items()))

        # Envelope fill/size distributions are push-time observations, so
        # they get live histogram children (cheap no-ops while wire
        # batching is off — record_envelope is simply never called).
        # Call sites label transports differently (transport=..., or
        # shard=... in a cluster); a histogram family needs one label
        # schema, so the caller's labels collapse into a single origin.
        origin = ",".join(f"{k}:{v}" for k, v in base) or "default"
        self._fill_hist = registry.histogram(
            "repro_net_envelope_fill",
            "Messages per batch-envelope frame",
            labelnames=("origin",),
            buckets=log_buckets(start=1.0, factor=2.0, count=9),
        ).labels(origin)
        self._bytes_hist = registry.histogram(
            "repro_net_envelope_bytes",
            "Bytes per batch-envelope frame",
            labelnames=("origin",),
            buckets=log_buckets(start=64.0, factor=4.0, count=10),
        ).labels(origin)

        def collect():
            yield Sample(
                "repro_traffic_messages_total", "counter",
                "Messages delivered by this transport", base, self.messages,
            )
            yield Sample(
                "repro_traffic_bytes_total", "counter",
                "Encoded bytes delivered", base, self.bytes,
            )
            yield Sample(
                "repro_traffic_dropped_total", "counter",
                "Messages dropped", base, self.dropped,
            )
            yield Sample(
                "repro_traffic_batches_total", "counter",
                "Outbound batch flushes", base, self.batches,
            )
            yield Sample(
                "repro_traffic_retries_total", "counter",
                "Per-hop delivery retries", base, self.retries,
            )
            yield Sample(
                "repro_net_envelopes_total", "counter",
                "Batch-envelope frames written", base, self.envelopes,
            )
            yield Sample(
                "repro_net_envelope_messages_total", "counter",
                "Messages carried inside batch envelopes", base,
                self.envelope_messages,
            )
            yield Sample(
                "repro_net_envelope_bytes_total", "counter",
                "Batch-envelope frame bytes written", base,
                self.envelope_bytes,
            )
            for kind, n in sorted(self.by_kind.items()):
                yield Sample(
                    "repro_traffic_messages_by_kind_total", "counter",
                    "Messages delivered, by protocol kind",
                    base + (("kind", kind),), n,
                )
            for reason, n in sorted(self.drops_by_reason.items()):
                yield Sample(
                    "repro_traffic_drops_by_reason_total", "counter",
                    "Messages dropped, by reason",
                    base + (("reason", reason),), n,
                )

        registry.register_collector(collect)

    def reset(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.by_kind.clear()
        self.bytes_by_kind.clear()
        self.by_link.clear()
        self.dropped_by_kind.clear()
        self.drops_by_reason.clear()
        self.batches = 0
        self.batched_messages = 0
        self.retries = 0
        self.envelopes = 0
        self.envelope_messages = 0
        self.envelope_bytes = 0

    def __repr__(self) -> str:
        return (
            f"TrafficStats(messages={self.messages}, bytes={self.bytes}, "
            f"dropped={self.dropped})"
        )


class Transport(abc.ABC):
    """One endpoint's handle onto a network.

    The four-method contract — :meth:`send`, :meth:`recv`, :meth:`close`,
    :attr:`stats` — is what every transport implements; :meth:`drive` and
    :meth:`guard` have sensible defaults for single-threaded transports.
    """

    def guard(self):
        """Context manager serializing application threads with handler
        invocations.  A no-op on single-threaded transports; the TCP
        transport overrides it with its condition lock."""
        return contextlib.nullcontext()

    @property
    @abc.abstractmethod
    def local_id(self) -> str:
        """The endpoint id this handle sends as."""

    @abc.abstractmethod
    def send(self, message: Message) -> None:
        """Queue *message* for delivery to ``message.to``.

        An empty ``to`` addresses the central server.  Raises
        :class:`~repro.errors.TransportClosedError` after :meth:`close`.
        """

    @abc.abstractmethod
    def recv(self, message: Message) -> None:
        """Deliver one inbound *message* into the endpoint's handler.

        Transports call this from their reader thread / task / pump loop;
        implementations serialize the call with :meth:`guard` so the
        sans-I/O cores never see concurrent handler invocations.
        """

    @abc.abstractmethod
    def drive(
        self, predicate: Callable[[], bool], timeout: float = 5.0
    ) -> bool:
        """Make network progress until *predicate* is true.

        Returns True if the predicate became true, False on timeout.  On a
        simulated network "timeout" is simulated time; no real waiting
        happens.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Detach this endpoint; further sends raise."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        ...

    @property
    @abc.abstractmethod
    def stats(self) -> TrafficStats:
        """The traffic accounting this transport records into."""


@runtime_checkable
class TransportLike(Protocol):
    """Structural protocol for third-party transports.

    Anything with this shape can be bound to a :class:`CosoftServer`, a
    :class:`ShardedCosoftCluster` or an :class:`ApplicationInstance`
    without subclassing :class:`Transport` — the endpoints only ever call
    these members.
    """

    @property
    def local_id(self) -> str: ...

    def send(self, message: Message) -> None: ...

    def recv(self, message: Message) -> None: ...

    def drive(self, predicate: Callable[[], bool], timeout: float = 5.0) -> bool: ...

    def close(self) -> None: ...

    @property
    def closed(self) -> bool: ...

    @property
    def stats(self) -> TrafficStats: ...


def resolve_destination(message: Message) -> str:
    """The endpoint id a message should be delivered to."""
    return message.to or SERVER_ID
