"""Transport abstraction shared by the simulated and TCP networks.

The server and the application instances are **sans-I/O state machines**:
they expose ``handle_message(Message)`` and emit messages through a
:class:`Transport` handle.  Two implementations exist:

* :class:`~repro.net.memory.MemoryNetwork` — deterministic discrete-event
  simulation with a latency model (the default for tests and benchmarks);
* :class:`~repro.net.tcp.TcpTransport` — real sockets, one thread per
  connection.

Blocking request/reply interactions (CopyFrom, lock acquisition, …) are
expressed through :meth:`Transport.drive`: "make progress until *predicate*
becomes true or *timeout* elapses".  On the memory network this pumps the
event queue (no real waiting); on TCP it waits on a condition variable fed
by the receive thread.
"""

from __future__ import annotations

import abc
import contextlib
from collections import Counter
from typing import Callable, Dict, Optional

from repro.net.message import Message

MessageHandler = Callable[[Message], None]

#: Reserved endpoint id of the central server (or of a cluster front-end
#: posing as it).  An empty ``Message.to`` addresses this endpoint.
SERVER_ID = "server"

#: Reserved sender id of a cluster front-end router issuing internal
#: control traffic (shard migration).  Never a client instance id.
ROUTER_ID = "router"


class TrafficStats:
    """Counters of protocol traffic, reported by every benchmark.

    Tracks message and byte counts globally, per message kind and per
    directed (sender, receiver) link.
    """

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.by_kind: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()
        self.by_link: Counter = Counter()
        self.dropped_by_kind: Counter = Counter()

    def record(self, message: Message, size: int, receiver: str) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += size
        self.by_link[(message.sender, receiver)] += 1

    def record_drop(self, message: Optional[Message] = None, size: int = 0) -> None:
        """Count a lost message, attributing its kind and size when known."""
        self.dropped += 1
        self.dropped_bytes += size
        if message is not None:
            self.dropped_by_kind[message.kind] += 1

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        """Fold *other*'s counters into this one (returns self).

        Aggregates per-shard transport stats into one cluster-wide
        snapshot for benchmarks and the monitor tool.
        """
        self.messages += other.messages
        self.bytes += other.bytes
        self.dropped += other.dropped
        self.dropped_bytes += other.dropped_bytes
        self.by_kind.update(other.by_kind)
        self.bytes_by_kind.update(other.bytes_by_kind)
        self.by_link.update(other.by_link)
        self.dropped_by_kind.update(other.dropped_by_kind)
        return self

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict summary (stable keys, benchmark-friendly)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes,
            "dropped": self.dropped,
            "dropped_bytes": self.dropped_bytes,
            "by_kind": dict(self.by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
            "by_link": {f"{a}->{b}": n for (a, b), n in self.by_link.items()},
            "dropped_by_kind": dict(self.dropped_by_kind),
        }

    def reset(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.by_kind.clear()
        self.bytes_by_kind.clear()
        self.by_link.clear()
        self.dropped_by_kind.clear()

    def __repr__(self) -> str:
        return (
            f"TrafficStats(messages={self.messages}, bytes={self.bytes}, "
            f"dropped={self.dropped})"
        )


class Transport(abc.ABC):
    """One endpoint's handle onto a network."""

    def guard(self):
        """Context manager serializing application threads with handler
        invocations.  A no-op on single-threaded transports; the TCP
        transport overrides it with its condition lock."""
        return contextlib.nullcontext()

    @property
    @abc.abstractmethod
    def local_id(self) -> str:
        """The endpoint id this handle sends as."""

    @abc.abstractmethod
    def send(self, message: Message) -> None:
        """Queue *message* for delivery to ``message.to``.

        An empty ``to`` addresses the central server.  Raises
        :class:`~repro.errors.TransportClosedError` after :meth:`close`.
        """

    @abc.abstractmethod
    def drive(
        self, predicate: Callable[[], bool], timeout: float = 5.0
    ) -> bool:
        """Make network progress until *predicate* is true.

        Returns True if the predicate became true, False on timeout.  On a
        simulated network "timeout" is simulated time; no real waiting
        happens.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Detach this endpoint; further sends raise."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        ...


def resolve_destination(message: Message) -> str:
    """The endpoint id a message should be delivered to."""
    return message.to or SERVER_ID
