"""Wire messages of the COSOFT communication protocol.

Everything the central server and the application instances exchange is a
:class:`Message`: a small, JSON-serializable envelope with a *kind*, a
sender, an optional addressee, a payload dict and request/reply
correlation ids.

The protocol is deliberately application-independent (§3.4): its kinds talk
about UI objects, couple links, locks, UI states and generic commands —
never about application semantics.  Application-specific protocols ride on
:data:`COMMAND` (the paper's ``CoSendCommand`` primitive).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import CodecError

# ---------------------------------------------------------------------------
# Message kinds
# ---------------------------------------------------------------------------

# Registration (server database: "registration records")
REGISTER = "register"              # client -> server: join the session
REGISTER_ACK = "register_ack"      # server -> client
UNREGISTER = "unregister"          # client -> server: leave (auto-decouples)
INSTANCE_LIST = "instance_list"    # server -> client: roster update broadcast

# Couple links (§3.2 "coupling information is replicated for each object")
COUPLE = "couple"                  # client -> server: create couple link
DECOUPLE = "decouple"              # client -> server: remove couple link
COUPLE_UPDATE = "couple_update"    # server -> all: link added/removed + groups
REMOTE_COUPLE = "remote_couple"    # third party -> server: couple remote objs
REMOTE_DECOUPLE = "remote_decouple"

# Floor control (§3.2 lock table)
LOCK_REQUEST = "lock_request"      # client -> server: lock CO(o)
LOCK_REPLY = "lock_reply"          # server -> client: granted / denied
UNLOCK = "unlock"                  # client -> server: release group lock

# Synchronization by multiple execution (§3.2)
EVENT = "event"                    # client -> server: high-level UI event
EVENT_BROADCAST = "event_broadcast"  # server -> clients: re-execute event
EVENT_ACK = "event_ack"            # client -> server: re-execution done
#   (the floor is released only when every receiver acked: objects stay
#   locked "until the processing of this event is completed", §3.2)

# Synchronization by UI state (§3.1)
FETCH_STATE = "fetch_state"        # CopyFrom: requester -> server -> owner
STATE_REPLY = "state_reply"        # owner -> server -> requester
PUSH_STATE = "push_state"          # CopyTo: owner -> server -> receiver(s)
REMOTE_COPY = "remote_copy"        # third party -> server: copy A's obj to B
RESYNC_REQUEST = "resync_request"  # delta receiver -> server -> owner: the
#   receiver lost delta continuity (missed seq / structure changed) and
#   asks the owner to re-send a full snapshot (docs/PERF.md)

# Protocol extension (§3.4)
COMMAND = "command"                # CoSendCommand: app-defined RPC
COMMAND_REPLY = "command_reply"

# Access permissions & history (server database categories)
PERMISSION_SET = "permission_set"
PERMISSION_REPLY = "permission_reply"
HISTORY_PUSH = "history_push"      # receiver backs up an overwritten state
UNDO_REQUEST = "undo_request"      # restore a historical UI state
UNDO_REPLY = "undo_reply"

# Cluster-internal group migration (sharded deployments; docs/CLUSTER.md).
# Only a cluster front-end router (sender "router") may issue these; a
# shard answers EXPORT with STATE and IMPORT with ACK.
MIGRATE_EXPORT = "migrate_export"  # router -> shard: extract a couple group
MIGRATE_STATE = "migrate_state"    # shard -> router: the group's state
MIGRATE_IMPORT = "migrate_import"  # router -> shard: install a couple group
MIGRATE_ACK = "migrate_ack"        # shard -> router: import complete

# Multi-process cluster plane (docs/CLUSTER.md).  Spoken only on the
# private router<->shard-worker links of a ``processes=True`` cluster and
# by the operator CLI; a shard worker rejects them from any sender other
# than the router.
SHARD_ATTACH = "shard_attach"      # router -> worker: claim the link
SHARD_HELLO = "shard_hello"        # worker -> router: ready + max seen did
SHARD_FORWARD = "shard_forward"    # router -> worker: deliver inner message
SHARD_UPLINK = "shard_uplink"      # worker -> router: ack + collected outputs
SHARD_PING = "shard_ping"          # router -> worker: liveness probe
SHARD_PONG = "shard_pong"          # worker -> router: liveness + load stats
SHARD_SYNC = "shard_sync"          # router -> worker: roster/ACL bootstrap
SHARD_INVENTORY = "shard_inventory"  # router -> worker: list stateful groups
SHARD_INVENTORY_REPLY = "shard_inventory_reply"  # worker -> router
SHARD_OBS_PULL = "shard_obs_pull"  # router -> worker: scrape metrics + spans
SHARD_OBS_REPLY = "shard_obs_reply"  # worker -> router: samples/span delta

# Cluster administration (operator CLI -> router; docs/CLUSTER.md).
CLUSTER_STATUS = "cluster_status"
CLUSTER_STATUS_REPLY = "cluster_status_reply"
CLUSTER_RESHARD = "cluster_reshard"          # add/remove a shard live
CLUSTER_RESHARD_REPLY = "cluster_reshard_reply"

# Late-join catch-up (event-sourced persistence; docs/PERSISTENCE.md).
# A joiner that already holds state at log position N asks for the op-log
# suffix after N instead of a full PUSH_STATE; the reply carries the
# server's current state fingerprint, the suffix entries, and — when
# compaction dropped the requested range — the newest snapshot.
CATCHUP_REQUEST = "catchup_request"  # client/standby -> server
CATCHUP_REPLY = "catchup_reply"      # server -> requester

# Errors
ERROR = "error"                    # server -> client: request failed

ALL_KINDS = frozenset(
    {
        CATCHUP_REQUEST,
        CATCHUP_REPLY,
        MIGRATE_EXPORT,
        MIGRATE_STATE,
        MIGRATE_IMPORT,
        MIGRATE_ACK,
        REGISTER,
        REGISTER_ACK,
        UNREGISTER,
        INSTANCE_LIST,
        COUPLE,
        DECOUPLE,
        COUPLE_UPDATE,
        REMOTE_COUPLE,
        REMOTE_DECOUPLE,
        LOCK_REQUEST,
        LOCK_REPLY,
        UNLOCK,
        EVENT,
        EVENT_ACK,
        EVENT_BROADCAST,
        FETCH_STATE,
        STATE_REPLY,
        PUSH_STATE,
        REMOTE_COPY,
        RESYNC_REQUEST,
        COMMAND,
        COMMAND_REPLY,
        PERMISSION_SET,
        PERMISSION_REPLY,
        HISTORY_PUSH,
        UNDO_REQUEST,
        UNDO_REPLY,
        SHARD_ATTACH,
        SHARD_HELLO,
        SHARD_FORWARD,
        SHARD_UPLINK,
        SHARD_PING,
        SHARD_PONG,
        SHARD_SYNC,
        SHARD_INVENTORY,
        SHARD_INVENTORY_REPLY,
        SHARD_OBS_PULL,
        SHARD_OBS_REPLY,
        CLUSTER_STATUS,
        CLUSTER_STATUS_REPLY,
        CLUSTER_RESHARD,
        CLUSTER_RESHARD_REPLY,
        ERROR,
    }
)

_msg_counter = itertools.count(1)


def _next_msg_id() -> int:
    return next(_msg_counter)


# Validating a payload and serializing it are the same walk, so the
# constructor does both at once: one ``json.dumps`` (C speed) proves the
# payload serializable *and* yields the exact bytes :func:`repro.net.codec.encode`
# will splice into the frame.  The memo shares that work across the
# fan-out case — a server broadcast constructs one Message per receiver
# around the same payload container — keyed by identity, with a strong
# reference pinning the object so its id cannot be recycled.  Entries
# hold ``(payload, json_or_None)``; ``None`` marks a container that is
# known JSON-safe (it came off the wire) but not serialized yet.
_JSON_MEMO: "Dict[int, Any]" = {}
_JSON_MEMO_MAX = 512


def _dumps(value: Any) -> str:
    return json.dumps(value, separators=(",", ":"), sort_keys=True)


def _remember(payload: Any, body: Optional[str]) -> None:
    if len(_JSON_MEMO) >= _JSON_MEMO_MAX:
        _JSON_MEMO.clear()
    _JSON_MEMO[id(payload)] = (payload, body)


#: Kinds are fixed ASCII identifiers — their JSON form needs no escaping.
_WIRE_KINDS = {kind: f'"{kind}"' for kind in ALL_KINDS}

#: Endpoint ids repeat across nearly every message of a session; memoize
#: their (escaping-correct) JSON form instead of re-dumping per message.
_WIRE_IDS: "Dict[str, str]" = {}
_WIRE_IDS_MAX = 1024


def _wire_id(value: str) -> str:
    cached = _WIRE_IDS.get(value)
    if cached is None:
        cached = json.dumps(value)
        if len(_WIRE_IDS) >= _WIRE_IDS_MAX:
            _WIRE_IDS.clear()
        _WIRE_IDS[value] = cached
    return cached


@dataclass(frozen=True)
class Message:
    """One protocol message.

    Attributes
    ----------
    kind:
        One of the module-level kind constants.
    sender:
        The instance id of the sending endpoint (``"server"`` for the
        central controller).
    payload:
        Kind-specific JSON-safe data.
    to:
        Addressee instance id; empty string means "to the server" for
        client messages, and is never empty for server messages.
    msg_id:
        Unique id for request/reply correlation.
    reply_to:
        The ``msg_id`` this message answers, or ``None``.
    trace:
        Optional causal-trace context ``(trace_id, parent_span_id)``
        stamped by an observability-enabled endpoint (see
        :mod:`repro.obs.tracing`).  ``None`` — the default — is never
        serialized, so uninstrumented traffic is byte-identical to a
        build without tracing.
    """

    kind: str
    sender: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    to: str = ""
    msg_id: int = field(default_factory=_next_msg_id)
    reply_to: Optional[int] = None
    trace: Optional[Tuple[str, str]] = None
    #: Payload pre-serialized at validation time; ``None`` until the
    #: first (lazy) serialization for wire-deserialized messages.
    _payload_json: Optional[str] = field(
        init=False, repr=False, compare=False, default=None
    )
    #: Wire frames cached by the codecs, **keyed by codec name** — a
    #: message is immutable, so re-sends (retries, replays, broadcasts)
    #: skip re-serialization entirely, and a frame cached under one codec
    #: can never replay on a connection negotiated to another (a JSON
    #: frame must not answer a binary peer).  ``None`` until the first
    #: encode; codecs create the dict lazily.  Contract: each entry is
    #: one **complete frame** (4-byte length header + body) whose body is
    #: self-describing, because ``encode_batch`` splices the body —
    #: ``frame[HEADER_SIZE:]`` — directly into a batch envelope without
    #: re-encoding (docs/PROTOCOL.md).
    _frames: Optional[Dict[str, bytes]] = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise CodecError(f"unknown message kind {self.kind!r}")
        trace = self.trace
        if trace is not None and type(trace) is not tuple:
            # Normalize list-form wire data so equality/hashing work.
            object.__setattr__(self, "trace", tuple(trace))
        payload = self.payload
        if type(payload) is not dict:
            payload = dict(payload)
        entry = _JSON_MEMO.get(id(payload))
        if entry is not None and entry[0] is payload:
            object.__setattr__(self, "_payload_json", entry[1])
            return
        for key in payload:
            if not isinstance(key, str):
                raise CodecError(
                    f"payload of {self.kind!r} message has non-string "
                    f"key {key!r}"
                )
        try:
            body = _dumps(payload)
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"payload of {self.kind!r} message is not "
                f"JSON-serializable: {exc}"
            ) from exc
        object.__setattr__(self, "_payload_json", body)
        _remember(payload, body)

    def wire_body(self) -> str:
        """The frame body: JSON identical to ``dumps(self.to_wire())``.

        Splices the payload serialization cached at construction between
        cheaply-dumped scalar fields, preserving the codec's sorted-key,
        compact-separator format byte for byte.
        """
        payload_json = self._payload_json
        if payload_json is None:  # wire-deserialized; serialize lazily
            payload_json = _dumps(dict(self.payload))
            object.__setattr__(self, "_payload_json", payload_json)
        reply_to = self.reply_to
        trace = self.trace
        # "to" < "trace" in the sorted key order, so the optional trace
        # context appends after "to" without disturbing byte-for-byte
        # parity with ``_dumps(self.to_wire())``.
        trace_part = (
            ""
            if trace is None
            else f',"trace":[{_wire_id(trace[0])},{_wire_id(trace[1])}]'
        )
        return (
            f'{{"kind":{_WIRE_KINDS[self.kind]}'
            f',"msg_id":{self.msg_id:d}'
            f',"payload":{payload_json}'
            f',"reply_to":{"null" if reply_to is None else f"{reply_to:d}"}'
            f',"sender":{_wire_id(self.sender)}'
            f',"to":{_wire_id(self.to)}{trace_part}}}'
        )

    def reply(self, kind: str, sender: str, **payload: Any) -> "Message":
        """Build a reply to this message (correlated via ``reply_to``)."""
        return Message(
            kind=kind,
            sender=sender,
            to=self.sender,
            payload=payload,
            reply_to=self.msg_id,
        )

    def error_reply(self, sender: str, reason: str, **extra: Any) -> "Message":
        """Build an :data:`ERROR` reply carrying *reason*."""
        payload: Dict[str, Any] = {"reason": reason, "failed_kind": self.kind}
        payload.update(extra)
        return Message(
            kind=ERROR,
            sender=sender,
            to=self.sender,
            payload=payload,
            reply_to=self.msg_id,
        )

    def to_wire(self) -> Dict[str, Any]:
        wire = {
            "kind": self.kind,
            "sender": self.sender,
            "to": self.to,
            "payload": dict(self.payload),
            "msg_id": self.msg_id,
            "reply_to": self.reply_to,
        }
        if self.trace is not None:
            wire["trace"] = list(self.trace)
        return wire

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "Message":
        try:
            payload = data.get("payload")
            if type(payload) is not dict:
                payload = dict(payload) if payload else {}
            # Deserialized wire data is JSON-safe by construction; skip
            # re-serializing it in ``__post_init__``.  No defensive copy:
            # on the decode path the dict is fresh out of ``json.loads``
            # (and ``to_wire`` hands out copies anyway).
            _remember(payload, None)
            trace = data.get("trace")
            return cls(
                kind=data["kind"],
                sender=data["sender"],
                to=data.get("to", ""),
                payload=payload,
                msg_id=int(data["msg_id"]),
                reply_to=data.get("reply_to"),
                trace=tuple(trace) if trace else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed wire message: {exc}") from exc
