"""The pluggable communicator registry (docs/COMMUNICATORS.md).

The paper's central claim is that one flexible communication substrate
serves heterogeneous clients — which means the set of transports cannot
be a closed list baked into :class:`~repro.session.Session`.  This
module is the open end: backends register under a string name, and
``Session(backend=<name>)`` resolves through the registry, so a
websocket, gRPC or browser backend is a third-party install, not a core
edit.

A *communicator* is a factory ``factory(config: SessionConfig) ->
backend`` where the backend implements the small surface
``repro.session._BackendBase`` documents (``create_instance`` /
``pump`` / ``traffic`` / ``close`` / ``now``).  Three registration
paths, in resolution order:

1. **Built-ins** — ``memory`` / ``tcp`` / ``aio`` are pre-seeded as
   lazy targets into :mod:`repro.session` (never imported from here, to
   keep the module import-cycle-free).
2. **API** — :func:`register_communicator`, directly or as a decorator::

       @register_communicator("inproc")
       class InprocBackend: ...

       register_communicator("websocket", "mypkg.ws:WsBackend",
                             extra="websocket")

3. **Entry points** — packages advertise backends under the
   ``repro.communicators`` group in their own metadata::

       [project.entry-points."repro.communicators"]
       websocket = "mypkg.ws:WsBackend"

   Entry points are scanned once, lazily, the first time a name misses.

Lazy string targets (``"module:attr"``) are imported only when the
backend is first constructed.  A target whose import fails raises
:class:`~repro.errors.CommunicatorDependencyError` naming the pip extra
to install (pass ``extra=`` at registration); an unknown name raises
:class:`~repro.errors.UnknownCommunicatorError` listing what *is*
registered.  Both are ``ValueError``/``ImportError`` subclasses, so
pre-registry ``except ValueError`` callers keep working.

:data:`BACKENDS` is a live, ordered view of the registered names —
``repro.session.BACKENDS`` is this very object, so third-party
registrations show up there immediately.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from repro.errors import CommunicatorDependencyError, UnknownCommunicatorError

#: Entry-point group third-party packages use to advertise backends.
ENTRY_POINT_GROUP = "repro.communicators"


@dataclass
class CommunicatorSpec:
    """One registry entry: where a backend comes from and how to load it."""

    #: Registry name (``Session(backend=<name>)``).
    name: str
    #: A ready factory, or a lazy ``"module:attr"`` import target.
    target: Union[Callable[..., Any], str]
    #: Pip extra that provides the target's dependencies, for the
    #: actionable import-failure message (``pip install "repro[extra]"``).
    extra: Optional[str] = None
    #: Where the entry came from: ``"builtin"`` / ``"api"`` /
    #: ``"entry-point"`` — surfaced by :func:`communicator_specs`.
    source: str = "api"

    def resolve(self) -> Callable[..., Any]:
        """The factory — importing the lazy target on first use."""
        target = self.target
        if not isinstance(target, str):
            return target
        module_name, _, attr = target.partition(":")
        if not module_name or not attr:
            raise CommunicatorDependencyError(
                self.name, target, "target must look like 'module:attr'",
                self.extra,
            )
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise CommunicatorDependencyError(
                self.name, target, str(exc), self.extra
            ) from exc
        try:
            factory = getattr(module, attr)
        except AttributeError as exc:
            raise CommunicatorDependencyError(
                self.name, target, str(exc), self.extra
            ) from exc
        # Memoize so later constructions skip the getattr dance.
        self.target = factory
        return factory


#: The process-wide registry, in registration order (builtins first).
#: The built-in backends are seeded as lazy targets into
#: :mod:`repro.session` — never imported from here, so the registry can
#: be imported (and extended) without pulling in the whole stack.
_REGISTRY: Dict[str, CommunicatorSpec] = {
    name: CommunicatorSpec(
        name=name, target=f"repro.session:{attr}", source="builtin"
    )
    for name, attr in (
        ("memory", "_MemoryBackend"),
        ("tcp", "_TcpBackend"),
        ("aio", "_AioBackend"),
    )
}

#: Entry points are scanned at most once per process, on first miss.
_ENTRY_POINTS_SCANNED = False


def register_communicator(
    name: str,
    target: Union[Callable[..., Any], str, None] = None,
    *,
    extra: Optional[str] = None,
    replace: bool = False,
    _source: str = "api",
):
    """Register a communicator backend under *name*.

    *target* is a factory ``factory(config) -> backend`` or a lazy
    ``"module:attr"`` string imported on first use.  With *target*
    omitted this returns a class decorator.  Re-registering a name
    raises unless *replace* — two packages must not silently fight over
    one name.  *extra* names the pip extra whose absence explains an
    import failure.
    """
    if target is None:
        def _decorator(factory):
            register_communicator(
                name, factory, extra=extra, replace=replace, _source=_source
            )
            return factory

        return _decorator
    existing = _REGISTRY.get(name)
    if existing is not None and not replace and existing.target is not target:
        raise ValueError(
            f"communicator {name!r} is already registered "
            f"(source: {existing.source}); pass replace=True to override"
        )
    _REGISTRY[name] = CommunicatorSpec(
        name=name, target=target, extra=extra, source=_source
    )
    return target


def unregister_communicator(name: str) -> bool:
    """Remove *name* from the registry; True if it was present."""
    return _REGISTRY.pop(name, None) is not None


def _scan_entry_points() -> None:
    """Fold ``repro.communicators`` entry points into the registry.

    Runs at most once per process, and never overrides an existing name
    (builtins and explicit registrations win over metadata).
    """
    global _ENTRY_POINTS_SCANNED
    if _ENTRY_POINTS_SCANNED:
        return
    _ENTRY_POINTS_SCANNED = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py3.8 fallback path
        return
    try:
        found = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - py3.9 API shape
        found = entry_points().get(ENTRY_POINT_GROUP, ())
    for point in found:
        if point.name not in _REGISTRY:
            _REGISTRY[point.name] = CommunicatorSpec(
                name=point.name,
                target=point.value,
                source="entry-point",
            )


def get_communicator(name: str) -> Callable[..., Any]:
    """Resolve *name* to its backend factory.

    Raises :class:`UnknownCommunicatorError` (a ``ValueError``) for a
    name nobody registered, :class:`CommunicatorDependencyError` (an
    ``ImportError``) for a registered name whose module will not import.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        _scan_entry_points()
        spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownCommunicatorError(name, communicator_names())
    return spec.resolve()


def has_communicator(name: str) -> bool:
    """Whether *name* resolves — without importing its module."""
    if name in _REGISTRY:
        return True
    _scan_entry_points()
    return name in _REGISTRY


def communicator_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order (builtins first)."""
    _scan_entry_points()
    return tuple(_REGISTRY)


def communicator_specs() -> Tuple[CommunicatorSpec, ...]:
    """The registry entries themselves (for tooling and diagnostics)."""
    _scan_entry_points()
    return tuple(_REGISTRY.values())


class _BackendsView:
    """A live, tuple-like view of the registered communicator names.

    ``repro.session.BACKENDS`` is an instance of this class, so code
    that iterates, indexes, or membership-tests the historical tuple
    keeps working while third-party registrations appear immediately.
    """

    __slots__ = ()

    def __iter__(self) -> Iterator[str]:
        return iter(communicator_names())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and has_communicator(name)

    def __len__(self) -> int:
        return len(_REGISTRY) if _ENTRY_POINTS_SCANNED else len(
            communicator_names()
        )

    def __getitem__(self, index):
        return communicator_names()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _BackendsView):
            return True
        if isinstance(other, (tuple, list)):
            return tuple(self) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:  # views are interchangeable singletons
        return hash(_BackendsView)

    def __repr__(self) -> str:
        return repr(communicator_names())


#: The live view ``repro.session`` re-exports as ``BACKENDS``.
BACKENDS = _BackendsView()


__all__ = [
    "BACKENDS",
    "ENTRY_POINT_GROUP",
    "CommunicatorSpec",
    "communicator_names",
    "communicator_specs",
    "get_communicator",
    "has_communicator",
    "register_communicator",
    "unregister_communicator",
]
