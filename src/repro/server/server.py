"""The central COSOFT server (Figure 4).

"A central controller (the server) coordinates the communication and access
control.  A centralized database residing on the server consists of four
categories of data: the access permissions, the registration records, the
historical UI states, and the lock table." (§2.2)

The server is a **sans-I/O state machine**: :meth:`CosoftServer.handle_message`
consumes one decoded :class:`~repro.net.message.Message` and emits messages
through the bound transport.  It never blocks and holds no threads of its
own, so the same class runs on the deterministic in-memory network and on
TCP.

Responsibilities per the paper:

* registration records (join/leave, roster broadcast);
* the couple table with transitive-closure groups, replicated to every
  instance via COUPLE_UPDATE broadcasts (§3.2);
* the floor-control lock table serializing events per couple group (§3.2);
* relaying and broadcasting UI events for multiple execution (§3.2);
* mediating synchronization by state — CopyFrom/CopyTo/RemoteCopy (§3.1);
* historical UI states with undo/redo (§2.2);
* access permissions (§2.2);
* the application-defined command channel, "directly handled by our
  communication server" (§3.4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import NoSuchCoupleError, ReproError
from repro.net import kinds
from repro.net.clock import Clock, SimClock
from repro.net.message import Message
from repro.net.transport import ROUTER_ID, SERVER_ID, Transport
from repro.obs import NULL_OBS
from repro.obs import tracing as obs_tracing
from repro.server.couples import (
    CoupleLink,
    CoupleTable,
    GlobalId,
    gid_from_wire,
    gid_to_wire,
)
from repro.server.history import HistoricalState, HistoryStore
from repro.server.locks import LockOwner, LockTable
from repro.server.permissions import (
    COUPLE,
    READ,
    WRITE,
    AccessControl,
    PermissionRule,
)
from repro.server.registry import RegistrationRecord, Registry
from repro.server.routing import (
    RoutingStats,
    broadcast,
    validate_couple_scope,
)

# SERVER_ID historically lived here; it is now defined once in
# ``repro.net.transport`` (the wire layer also needs it) and re-exported
# for the many existing importers.
__all__ = ["SERVER_ID", "CosoftServer"]


@dataclass
class _PendingRoute:
    """Book-keeping for a request the server forwarded on a client's behalf."""

    requester: str
    requester_msg_id: int
    purpose: str                      # "copy_from" | "remote_copy"
    forward_to: str = ""               # the owner the fetch was sent to
    target: Optional[GlobalId] = None  # remote-copy final destination
    mode: str = "strict"


class CosoftServer:
    """The central controller of the fully replicated COSOFT architecture."""

    def __init__(
        self,
        *,
        clock: Optional[Clock] = None,
        access: Optional[AccessControl] = None,
        history_depth: int = 100,
        admin_users: Tuple[str, ...] = (),
        floor_lease: float = 30.0,
        ack_release: bool = True,
        couple_scope: str = "all",
        persistence: Optional[Any] = None,
    ):
        self.clock: Clock = clock if clock is not None else SimClock()
        self.registry = Registry()
        self.couples = CoupleTable()
        self.locks = LockTable()
        self.history = HistoryStore(max_depth=history_depth)
        self.access = access if access is not None else AccessControl()
        self.admin_users = set(admin_users)
        #: Maximum age of a floor before a competing lock request may
        #: forcibly reclaim it (protects liveness against a receiver that
        #: never acknowledges, e.g. because it was partitioned away).
        self.floor_lease = floor_lease
        #: Hold floors until receivers acknowledge re-execution (the
        #: correct reading of §3.2).  ``False`` releases on broadcast —
        #: kept only for the ablation benchmark, which shows that mode
        #: diverges under contention.
        self.ack_release = ack_release
        #: COUPLE_UPDATE delivery policy: ``"all"`` replicates coupling
        #: info to the whole population (paper-literal), ``"group"``
        #: restricts it to the affected couple group's audience.
        self.couple_scope = validate_couple_scope(couple_scope)
        #: Delivery decisions of the interest-aware routing layer.
        self.routing = RoutingStats()
        #: token-keyed record of what each granted floor currently locks.
        self._floors: Dict[Tuple[str, int], Tuple[GlobalId, ...]] = {}
        #: when each floor was granted (for lease expiry).
        self._floor_granted_at: Dict[Tuple[str, int], float] = {}
        #: receivers whose EVENT_ACK the floor release still waits for.
        self._pending_acks: Dict[Tuple[str, int], set] = {}
        self._pending: Dict[int, _PendingRoute] = {}
        #: Last structure fingerprint seen per object (from the ``sync``
        #: block of relayed PUSH_STATEs).  A warm-start cache for the
        #: compat-mapping layer: migrated groups carry it along so the
        #: receiving shard knows each object's last-announced spec shape
        #: without waiting for fresh traffic.  Deliberately outside the
        #: journal and the state fingerprint — it is advisory.
        self.fingerprints: Dict[GlobalId, str] = {}
        self.processed: Counter = Counter()
        self._transport: Optional[Transport] = None
        #: Event-sourced journal (:class:`repro.persist.Persistence`), or
        #: ``None`` — the default — which keeps the hot path at one
        #: attribute check (docs/PERSISTENCE.md).
        self.persistence = persistence
        #: Observability hooks (disabled stand-in by default; see
        #: :meth:`configure_observability`).
        self.obs = NULL_OBS
        #: Span of the message currently being handled (tracing only).
        self._active_span = None
        #: Open ``server.floor_held`` spans, keyed like ``_floors``.
        self._floor_spans: Dict[Tuple[str, int], Any] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, transport: Transport) -> None:
        """Attach the transport this server sends through."""
        self._transport = transport

    def configure_observability(self, obs, **labels: str) -> None:
        """Enable metrics/tracing for this server.

        Registers the routing and lock-table stats as pull-time
        collectors of *obs*'s registry (labelled, so a sharded cluster
        can distinguish its shards) and arms span recording in
        :meth:`handle_message`.
        """
        self.obs = obs
        if obs.enabled and obs.registry.enabled:
            self.routing.register_into(obs.registry, **labels)
            self.locks.stats.register_into(obs.registry, **labels)
            if self.persistence is not None:
                self.persistence.register_into(obs.registry, **labels)
            registry = obs.registry
            base = tuple(sorted(labels.items()))

            def collect():
                from repro.obs.metrics import Sample

                yield Sample(
                    "repro_server_registered_instances", "gauge",
                    "Instances currently registered", base,
                    len(self.registry),
                )
                yield Sample(
                    "repro_server_locks_held", "gauge",
                    "Objects currently locked", base,
                    len(self.locks.locked_objects()),
                )
                yield Sample(
                    "repro_server_floors_held", "gauge",
                    "Floors currently granted", base, len(self._floors),
                )
                for kind, n in sorted(self.processed.items()):
                    yield Sample(
                        "repro_server_processed_total", "counter",
                        "Messages processed, by kind",
                        base + (("kind", kind),), n,
                    )

            registry.register_collector(collect)

    def _send(self, message: Message) -> None:
        if self._transport is None:
            raise ReproError("server has no transport bound")
        self._transport.send(message)

    def _broadcast(
        self,
        kind: str,
        payload: Mapping[str, Any],
        *,
        exclude: Tuple[str, ...] = (),
        audience: Optional[Iterable[str]] = None,
    ) -> int:
        """Send *payload* to every registered instance except *exclude*.

        With *audience* (instance ids from the couple table's interest
        index) the delivery is scoped to registered audience members —
        see :mod:`repro.server.routing`, shared with the cluster router.
        """
        return broadcast(
            self._send,
            self.registry.instance_ids(),
            kind,
            payload,
            exclude=exclude,
            audience=audience,
            stats=self.routing,
        )

    def _couple_audience(self, obj: GlobalId) -> Optional[Iterable[str]]:
        """The COUPLE_UPDATE audience for *obj* under the current scope.

        ``None`` (scope "all") means full broadcast.  Must be computed
        *before* removals: the pre-removal component is who must learn
        about a decouple.
        """
        if self.couple_scope == "all":
            return None
        return self.couples.group_instances(obj)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    _HANDLERS: Dict[str, str] = {
        kinds.REGISTER: "_on_register",
        kinds.UNREGISTER: "_on_unregister",
        kinds.COUPLE: "_on_couple",
        kinds.REMOTE_COUPLE: "_on_couple",
        kinds.DECOUPLE: "_on_decouple",
        kinds.REMOTE_DECOUPLE: "_on_decouple",
        kinds.LOCK_REQUEST: "_on_lock_request",
        kinds.UNLOCK: "_on_unlock",
        kinds.EVENT: "_on_event",
        kinds.EVENT_ACK: "_on_event_ack",
        kinds.FETCH_STATE: "_on_fetch_state",
        kinds.STATE_REPLY: "_on_state_reply",
        kinds.PUSH_STATE: "_on_push_state",
        kinds.REMOTE_COPY: "_on_remote_copy",
        kinds.RESYNC_REQUEST: "_on_resync_request",
        kinds.HISTORY_PUSH: "_on_history_push",
        kinds.UNDO_REQUEST: "_on_undo_request",
        kinds.COMMAND: "_on_command",
        kinds.COMMAND_REPLY: "_on_command_reply",
        kinds.PERMISSION_SET: "_on_permission_set",
        kinds.ERROR: "_on_client_error",
        kinds.MIGRATE_EXPORT: "_on_migrate_export",
        kinds.MIGRATE_IMPORT: "_on_migrate_import",
        kinds.CATCHUP_REQUEST: "_on_catchup_request",
        kinds.SHARD_SYNC: "_on_shard_sync",
        kinds.SHARD_INVENTORY: "_on_shard_inventory",
    }

    #: Kinds that mutate the server database and therefore go to the op
    #: log (when persistence is on).  Pure relays — FETCH_STATE,
    #: PUSH_STATE, COMMAND, … — change nothing durable and stay out, so
    #: replay is exactly "re-apply every state-changing operation".
    _JOURNALED = frozenset(
        {
            kinds.REGISTER,
            kinds.UNREGISTER,
            kinds.COUPLE,
            kinds.REMOTE_COUPLE,
            kinds.DECOUPLE,
            kinds.REMOTE_DECOUPLE,
            kinds.LOCK_REQUEST,
            kinds.UNLOCK,
            kinds.EVENT,
            kinds.EVENT_ACK,
            kinds.HISTORY_PUSH,
            kinds.UNDO_REQUEST,
            kinds.PERMISSION_SET,
            kinds.MIGRATE_EXPORT,
            kinds.MIGRATE_IMPORT,
            kinds.SHARD_SYNC,
        }
    )

    #: Exception classes a malformed payload can trigger inside a handler;
    #: they become ERROR replies instead of killing the server.  Anything
    #: else is a genuine bug and propagates.
    _MALFORMED = (ReproError, KeyError, ValueError, TypeError, AttributeError,
                  IndexError)

    #: Span name for a traced inbound message, by kind (tracing).
    _RECEIVE_SPANS: Dict[str, str] = {
        kinds.LOCK_REQUEST: obs_tracing.SERVER_LOCK,
        kinds.EVENT: obs_tracing.SERVER_RECEIVE,
        kinds.EVENT_ACK: obs_tracing.SERVER_ACK,
    }

    def handle_message(self, message: Message) -> None:
        """Process one inbound message; errors become ERROR replies.

        The server must survive any payload a (buggy or malicious) client
        sends: handler failures on malformed data are answered with an
        ERROR reply and counted, never raised.

        A message carrying trace context opens a receive span for the
        duration of its handler; :meth:`_on_event` hangs the broadcast
        span off it (see :mod:`repro.obs.tracing`).
        """
        self.processed[message.kind] += 1
        obs = self.obs
        span = None
        if obs.tracing and message.trace is not None:
            span = obs.spans.start(
                self._RECEIVE_SPANS.get(message.kind, "server.receive"),
                trace_id=message.trace[0],
                parent_id=message.trace[1],
                endpoint=SERVER_ID,
                kind=message.kind,
                sender=message.sender,
            )
            self._active_span = span
        try:
            handler_name = self._HANDLERS.get(message.kind)
            if handler_name is None:
                self._send(
                    message.error_reply(SERVER_ID, "unsupported message kind")
                )
                return
            try:
                getattr(self, handler_name)(message)
            except self._MALFORMED as exc:
                self.processed["__rejected__"] += 1
                try:
                    self._send(
                        message.error_reply(
                            SERVER_ID, f"{type(exc).__name__}: {exc}"
                        )
                    )
                except ReproError:
                    pass  # no transport bound / sender unreachable
            else:
                # Journal the operation only after its handler succeeded:
                # the log then holds exactly the messages that mutated
                # the database, in application order, and a replay of
                # the log is byte-for-byte the same handler sequence.
                persist = self.persistence
                if persist is not None and message.kind in self._JOURNALED:
                    persist.record(self, message)
        finally:
            if span is not None:
                obs.spans.finish(span)
                self._active_span = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _require_registered(self, instance_id: str) -> RegistrationRecord:
        return self.registry.get(instance_id)

    def _user_of(self, instance_id: str) -> str:
        return self.registry.get(instance_id).user

    def _on_register(self, message: Message) -> None:
        payload = dict(message.payload)
        record = RegistrationRecord(
            instance_id=message.sender,
            user=str(payload.get("user", "")),
            host=str(payload.get("host", "localhost")),
            app_type=str(payload.get("app_type", "")),
            registered_at=self.clock.now(),
        )
        self.registry.add(record)
        # A returning instance starts a fresh history: lift the tombstone
        # :meth:`HistoryStore.forget_instance` left at its termination.
        self.history.revive_instance(record.instance_id)
        # Ack carries the roster and the full couple table, initializing the
        # newcomer's local replica of the coupling information (§3.2).
        self._send(
            message.reply(
                kinds.REGISTER_ACK,
                SERVER_ID,
                roster=self.registry.roster(),
                couples=self.couples.to_wire(),
                server_time=self.clock.now(),
            )
        )
        self._broadcast(
            kinds.INSTANCE_LIST,
            {"roster": self.registry.roster(), "joined": record.instance_id},
            exclude=(record.instance_id,),
        )

    def _on_unregister(self, message: Message) -> None:
        instance_id = message.sender
        self._require_registered(instance_id)
        # "The decoupling algorithm is applied automatically when ... an
        # application instance terminates" (§3.2).
        unregister_audience: Optional[set] = None
        if self.couple_scope != "all":
            unregister_audience = set()
            for coupled in self.couples.objects_of_instance(instance_id):
                unregister_audience.update(
                    self.couples.group_instances(coupled)
                )
        removed = self.couples.remove_instance(instance_id)
        self.locks.release_instance(instance_id)
        self.history.forget_instance(instance_id)
        self.access.forget_instance(instance_id)
        for gid in [g for g in self.fingerprints if g[0] == instance_id]:
            del self.fingerprints[gid]
        for key in [k for k in self._floors if k[0] == instance_id]:
            self._release_floor(key)
        # A departing instance can no longer acknowledge broadcasts: drop
        # it from every pending-ack set and release floors that drain.
        for key, pending in list(self._pending_acks.items()):
            pending.discard(instance_id)
            if not pending:
                self._release_floor(key)
        # Requests forwarded to the departing instance can never be
        # answered: fail them back to their requesters now instead of
        # leaking the route (and leaving the requester to time out).
        for msg_id, route in list(self._pending.items()):
            if route.forward_to != instance_id:
                continue
            del self._pending[msg_id]
            if route.requester in self.registry:
                self._send(
                    Message(
                        kind=kinds.ERROR,
                        sender=SERVER_ID,
                        to=route.requester,
                        payload={
                            "reason": f"instance {instance_id!r} left before "
                                      "answering",
                        },
                        reply_to=route.requester_msg_id,
                    )
                )
        self.registry.remove(instance_id)
        for link in removed:
            self._broadcast(
                kinds.COUPLE_UPDATE,
                {"action": "remove", "link": link.to_wire(), "cause": "unregister"},
                audience=unregister_audience,
            )
        self._broadcast(
            kinds.INSTANCE_LIST,
            {"roster": self.registry.roster(), "left": instance_id},
        )

    # ------------------------------------------------------------------
    # Couple links
    # ------------------------------------------------------------------

    def _on_couple(self, message: Message) -> None:
        payload = message.payload
        self._require_registered(message.sender)
        source = gid_from_wire(payload["source"])
        target = gid_from_wire(payload["target"])
        user = self._user_of(message.sender)
        for endpoint in (source, target):
            if endpoint[0] not in self.registry:
                self._send(
                    message.error_reply(
                        SERVER_ID, f"instance {endpoint[0]!r} is not registered"
                    )
                )
                return
            if not self.access.check(user, endpoint, COUPLE):
                self._send(
                    message.error_reply(
                        SERVER_ID,
                        f"user {user!r} may not couple {endpoint[0]}:{endpoint[1]}",
                    )
                )
                return
        link = CoupleLink(source=source, target=target, creator=message.sender)
        added = self.couples.add_link(link)
        update = {
            "action": "add",
            "link": link.to_wire(),
            "group": [gid_to_wire(g) for g in sorted(self.couples.group_of(source))],
            "already_existed": not added,
        }
        audience = self._couple_audience(source)
        if audience is not None:
            # Interest-scoped delivery: instances joining the merged group
            # have never seen its pre-existing internal links — ship them
            # along so every member's replica converges on the same group.
            update["links"] = [
                l.to_wire() for l in self.couples.links_of_group(source)
            ]
        # Direct reply to the requester (correlated), broadcast to the rest.
        self._send(message.reply(kinds.COUPLE_UPDATE, SERVER_ID, **update))
        self._broadcast(
            kinds.COUPLE_UPDATE,
            update,
            exclude=(message.sender,),
            audience=audience,
        )

    def _on_decouple(self, message: Message) -> None:
        payload = message.payload
        self._require_registered(message.sender)
        audience: Optional[set] = None
        if "object" in payload:
            # Subtree decouple: widget destroyed or whole object withdrawn.
            obj = gid_from_wire(payload["object"])
            if self.couple_scope != "all":
                audience = set()
                for coupled in self.couples.objects_of_instance(obj[0]):
                    if coupled[1] == obj[1] or coupled[1].startswith(
                        obj[1].rstrip("/") + "/"
                    ):
                        audience.update(self.couples.group_instances(coupled))
            removed = self.couples.remove_subtree(obj[0], obj[1])
            if not removed and payload.get("strict", False):
                raise NoSuchCoupleError(f"no couple links under {obj}")
        else:
            source = gid_from_wire(payload["source"])
            target = gid_from_wire(payload["target"])
            if self.couple_scope != "all":
                # Pre-removal component: who must learn about the split.
                audience = set(self.couples.group_instances(source))
                audience.update(self.couples.group_instances(target))
            removed = self.couples.remove_link(source, target)
        for link in removed:
            update = {"action": "remove", "link": link.to_wire(), "cause": "decouple"}
            self._send(message.reply(kinds.COUPLE_UPDATE, SERVER_ID, **update))
            self._broadcast(
                kinds.COUPLE_UPDATE,
                update,
                exclude=(message.sender,),
                audience=audience,
            )
        if not removed:
            # Nothing to remove: still confirm so the requester unblocks.
            self._send(
                message.reply(
                    kinds.COUPLE_UPDATE, SERVER_ID, action="noop", link=None
                )
            )

    # ------------------------------------------------------------------
    # Floor control
    # ------------------------------------------------------------------

    def _release_floor(self, key: Tuple[str, int]) -> None:
        """Drop a floor: its locks, lease record and pending acks."""
        objects = self._floors.pop(key, ())
        self._floor_granted_at.pop(key, None)
        self._pending_acks.pop(key, None)
        self.locks.release_all(objects, LockOwner(key[0], key[1]))
        floor_span = self._floor_spans.pop(key, None)
        if floor_span is not None:
            self.obs.spans.finish(floor_span)

    def _expire_stale_floors(self) -> None:
        """Lease expiry: reclaim floors whose acks never arrived."""
        now = self.clock.now()
        expired = [
            key
            for key, granted_at in self._floor_granted_at.items()
            if now - granted_at > self.floor_lease
        ]
        for key in expired:
            self._release_floor(key)

    def _on_lock_request(self, message: Message) -> None:
        payload = message.payload
        self._require_registered(message.sender)
        self._expire_stale_floors()
        source = gid_from_wire(payload["source"])
        token = int(payload.get("token", 0))
        owner = LockOwner(message.sender, token)
        group = self.couples.group_of(source)
        granted, conflicts = self.locks.acquire_all(sorted(group), owner)
        if granted:
            key = (owner.instance_id, owner.token)
            self._floors[key] = tuple(sorted(group))
            self._floor_granted_at[key] = self.clock.now()
            active = self._active_span
            if active is not None:
                # Floor lifetime span: grant .. release (ack or lease).
                self._floor_spans[key] = self.obs.spans.start(
                    obs_tracing.SERVER_FLOOR,
                    trace_id=active.trace_id,
                    parent_id=active.span_id,
                    endpoint=SERVER_ID,
                    owner=owner.instance_id,
                    objects=len(group),
                )
        self._send(
            message.reply(
                kinds.LOCK_REPLY,
                SERVER_ID,
                granted=granted,
                group=[gid_to_wire(g) for g in sorted(group)],
                conflicts=[gid_to_wire(c) for c in conflicts],
            )
        )

    def _on_unlock(self, message: Message) -> None:
        payload = message.payload
        token = int(payload.get("token", 0))
        owner = LockOwner(message.sender, token)
        key = (owner.instance_id, owner.token)
        if key in self._floors:
            self._release_floor(key)
        elif "objects" in payload:
            objects = tuple(gid_from_wire(g) for g in payload["objects"])
            self.locks.release_all(objects, owner)

    # ------------------------------------------------------------------
    # Synchronization by multiple execution (§3.2)
    # ------------------------------------------------------------------

    def _on_event(self, message: Message) -> None:
        payload = message.payload
        self._require_registered(message.sender)
        event_wire = dict(payload["event"])
        token = int(payload.get("token", 0))
        release = bool(payload.get("release", True))
        source: GlobalId = (
            str(event_wire.get("instance_id", message.sender)),
            str(event_wire.get("source_path", "")),
        )
        owner = LockOwner(message.sender, token)
        locked = self._floors.get((owner.instance_id, owner.token))
        # Group the coupled objects by owning instance and broadcast one
        # message per instance, listing the local target pathnames.
        targets_by_instance: Dict[str, List[str]] = {}
        if locked is not None:
            for gid in sorted(frozenset(locked) - {source}):
                targets_by_instance.setdefault(gid[0], []).append(gid[1])
        else:
            # Interest index lookup: O(audience), cached per component.
            audience = self.couples.audience_of(source)
            for instance_id in sorted(audience):
                paths = [p for p in audience[instance_id] if (instance_id, p) != source]
                if paths:
                    targets_by_instance[instance_id] = paths
        key = (owner.instance_id, owner.token)
        receivers = [
            instance_id
            for instance_id in targets_by_instance
            if instance_id in self.registry and instance_id != message.sender
        ]
        active = self._active_span
        bcast_span = None
        bcast_trace = None
        if active is not None and receivers:
            # Fan-out span; EVENT_BROADCASTs carry its id so each remote
            # apply hangs off the broadcast in the trace tree.
            bcast_span = self.obs.spans.start(
                obs_tracing.SERVER_BROADCAST,
                trace_id=active.trace_id,
                parent_id=active.span_id,
                endpoint=SERVER_ID,
                receivers=len(receivers),
            )
            bcast_trace = (active.trace_id, bcast_span.span_id)
        for instance_id in receivers:
            self._send(
                Message(
                    kind=kinds.EVENT_BROADCAST,
                    sender=SERVER_ID,
                    to=instance_id,
                    payload={
                        "event": event_wire,
                        "targets": targets_by_instance[instance_id],
                        "owner": [owner.instance_id, owner.token],
                    },
                    trace=bcast_trace,
                )
            )
        if bcast_span is not None:
            self.obs.spans.finish(bcast_span)
        self.routing.record_event(len(receivers))
        if release and locked is not None:
            if receivers and self.ack_release:
                # "They are unlocked when the processing of this event is
                # completed" (§3.2): hold the floor until every receiving
                # instance confirms it re-executed the event.
                self._pending_acks[key] = set(receivers)
            else:
                self._release_floor(key)

    def _on_event_ack(self, message: Message) -> None:
        payload = message.payload
        owner_wire = payload.get("owner")
        if not owner_wire:
            return
        key = (str(owner_wire[0]), int(owner_wire[1]))
        pending = self._pending_acks.get(key)
        if pending is None:
            return
        pending.discard(message.sender)
        if not pending:
            self._release_floor(key)

    # ------------------------------------------------------------------
    # Synchronization by UI state (§3.1)
    # ------------------------------------------------------------------

    def _forward_fetch(
        self, message: Message, obj: GlobalId, route: _PendingRoute
    ) -> None:
        forward = Message(
            kind=kinds.FETCH_STATE,
            sender=SERVER_ID,
            to=obj[0],
            payload={"object": gid_to_wire(obj)},
        )
        route.forward_to = obj[0]
        self._pending[forward.msg_id] = route
        self._send(forward)

    def _on_fetch_state(self, message: Message) -> None:
        """CopyFrom, step 1: requester asks for another object's state."""
        payload = message.payload
        self._require_registered(message.sender)
        obj = gid_from_wire(payload["object"])
        user = self._user_of(message.sender)
        if not self.access.check(user, obj, READ):
            self._send(
                message.error_reply(
                    SERVER_ID, f"user {user!r} may not read {obj[0]}:{obj[1]}"
                )
            )
            return
        if obj[0] not in self.registry:
            self._send(
                message.error_reply(
                    SERVER_ID, f"instance {obj[0]!r} is not registered"
                )
            )
            return
        self._forward_fetch(
            message,
            obj,
            _PendingRoute(
                requester=message.sender,
                requester_msg_id=message.msg_id,
                purpose="copy_from",
            ),
        )

    def _on_state_reply(self, message: Message) -> None:
        """The owning instance answered a forwarded FETCH_STATE."""
        route = self._pending.pop(message.reply_to or -1, None)
        if route is None:
            return  # Late or duplicate reply; drop.
        if route.purpose == "copy_from":
            self._send(
                Message(
                    kind=kinds.STATE_REPLY,
                    sender=SERVER_ID,
                    to=route.requester,
                    payload=dict(message.payload),
                    reply_to=route.requester_msg_id,
                )
            )
        elif route.purpose == "remote_copy" and route.target is not None:
            push_payload = dict(message.payload)
            push_payload["target"] = gid_to_wire(route.target)
            push_payload["mode"] = route.mode
            self._send(
                Message(
                    kind=kinds.PUSH_STATE,
                    sender=SERVER_ID,
                    to=route.target[0],
                    payload=push_payload,
                )
            )
            # Confirm to the initiating (third) instance.
            self._send(
                Message(
                    kind=kinds.STATE_REPLY,
                    sender=SERVER_ID,
                    to=route.requester,
                    payload={"status": "copied", "target": gid_to_wire(route.target)},
                    reply_to=route.requester_msg_id,
                )
            )

    def _on_push_state(self, message: Message) -> None:
        """CopyTo: an owner pushes its state at a target object."""
        payload = dict(message.payload)
        self._require_registered(message.sender)
        target = gid_from_wire(payload["target"])
        user = self._user_of(message.sender)
        if not self.access.check(user, target, WRITE):
            self._send(
                message.error_reply(
                    SERVER_ID, f"user {user!r} may not write {target[0]}:{target[1]}"
                )
            )
            return
        if target[0] not in self.registry:
            self._send(
                message.error_reply(
                    SERVER_ID, f"instance {target[0]!r} is not registered"
                )
            )
            return
        sync = payload.get("sync")
        if isinstance(sync, Mapping) and sync.get("fp"):
            self.fingerprints[target] = str(sync["fp"])
        self._send(
            Message(
                kind=kinds.PUSH_STATE,
                sender=SERVER_ID,
                to=target[0],
                payload=payload,
            )
        )
        self._send(
            message.reply(kinds.STATE_REPLY, SERVER_ID, status="pushed")
        )

    def _on_resync_request(self, message: Message) -> None:
        """A delta receiver lost continuity; relay to the object's owner.

        One-way: the owner answers with a fresh full-snapshot PUSH_STATE
        through the normal CopyTo path (docs/PERF.md, resync fallback).
        """
        payload = message.payload
        self._require_registered(message.sender)
        obj = gid_from_wire(payload["object"])
        target = gid_from_wire(payload["target"])
        if obj[0] not in self.registry:
            self._send(
                message.error_reply(
                    SERVER_ID, f"instance {obj[0]!r} is not registered"
                )
            )
            return
        self._send(
            Message(
                kind=kinds.RESYNC_REQUEST,
                sender=SERVER_ID,
                to=obj[0],
                payload={
                    "object": gid_to_wire(obj),
                    "target": gid_to_wire(target),
                    "requester": message.sender,
                },
            )
        )

    def _on_remote_copy(self, message: Message) -> None:
        """RemoteCopy: a third instance copies A's object into B (§3.1)."""
        payload = message.payload
        self._require_registered(message.sender)
        source = gid_from_wire(payload["source"])
        target = gid_from_wire(payload["target"])
        user = self._user_of(message.sender)
        if not self.access.check(user, source, READ):
            self._send(
                message.error_reply(
                    SERVER_ID, f"user {user!r} may not read {source[0]}:{source[1]}"
                )
            )
            return
        if not self.access.check(user, target, WRITE):
            self._send(
                message.error_reply(
                    SERVER_ID, f"user {user!r} may not write {target[0]}:{target[1]}"
                )
            )
            return
        for endpoint in (source, target):
            if endpoint[0] not in self.registry:
                self._send(
                    message.error_reply(
                        SERVER_ID, f"instance {endpoint[0]!r} is not registered"
                    )
                )
                return
        self._forward_fetch(
            message,
            source,
            _PendingRoute(
                requester=message.sender,
                requester_msg_id=message.msg_id,
                purpose="remote_copy",
                target=target,
                mode=str(payload.get("mode", "strict")),
            ),
        )

    # ------------------------------------------------------------------
    # History (undo/redo of overwritten UI states)
    # ------------------------------------------------------------------

    def _on_history_push(self, message: Message) -> None:
        payload = message.payload
        obj = gid_from_wire(payload["object"])
        self.history.push(
            HistoricalState(
                obj=obj,
                state=dict(payload.get("state", {})),
                timestamp=self.clock.now(),
                reason=str(payload.get("reason", "")),
                by_user=str(payload.get("user", "")),
            )
        )

    def _on_undo_request(self, message: Message) -> None:
        payload = message.payload
        obj = gid_from_wire(payload["object"])
        current = payload.get("current_state")
        redo = bool(payload.get("redo", False))
        if redo:
            entry = self.history.redo(obj, current)
        else:
            entry = self.history.undo(obj, current)
        self._send(
            message.reply(
                kinds.UNDO_REPLY,
                SERVER_ID,
                object=gid_to_wire(obj),
                state=dict(entry.state),
                reason=entry.reason,
            )
        )

    # ------------------------------------------------------------------
    # CoSendCommand (§3.4)
    # ------------------------------------------------------------------

    def _on_command(self, message: Message) -> None:
        payload = dict(message.payload)
        self._require_registered(message.sender)
        targets = payload.pop("targets", [])
        if not isinstance(targets, (list, tuple)):
            raise ValueError(f"targets must be a list, got {targets!r}")
        if not targets:
            targets = [
                iid
                for iid in self.registry.instance_ids()
                if iid != message.sender
            ]
        payload["origin"] = message.sender
        payload["origin_msg_id"] = message.msg_id
        for target in targets:
            if target not in self.registry:
                self._send(
                    message.error_reply(
                        SERVER_ID, f"instance {target!r} is not registered"
                    )
                )
                continue
            self._send(
                Message(
                    kind=kinds.COMMAND,
                    sender=SERVER_ID,
                    to=target,
                    payload=payload,
                )
            )

    def _on_command_reply(self, message: Message) -> None:
        payload = dict(message.payload)
        origin = str(payload.pop("origin", ""))
        origin_msg_id = payload.pop("origin_msg_id", None)
        if origin and origin in self.registry:
            payload["responder"] = message.sender
            self._send(
                Message(
                    kind=kinds.COMMAND_REPLY,
                    sender=SERVER_ID,
                    to=origin,
                    payload=payload,
                    reply_to=int(origin_msg_id) if origin_msg_id else None,
                )
            )

    # ------------------------------------------------------------------
    # Permissions
    # ------------------------------------------------------------------

    def _on_permission_set(self, message: Message) -> None:
        payload = message.payload
        user = self._user_of(message.sender)
        rule = PermissionRule.from_wire(dict(payload["rule"]))
        # An instance may manage rules about its own objects; admins may
        # manage anything.
        if user not in self.admin_users and rule.instance_id != message.sender:
            self._send(
                message.error_reply(
                    SERVER_ID,
                    f"user {user!r} may only set permissions on own objects",
                )
            )
            return
        if payload.get("action", "add") == "remove":
            self.access.remove(rule)
        else:
            self.access.add(rule)
        self._send(
            message.reply(kinds.PERMISSION_REPLY, SERVER_ID, ok=True)
        )

    # ------------------------------------------------------------------
    # Group migration (sharded clusters; docs/CLUSTER.md)
    # ------------------------------------------------------------------

    def export_group(self, objects: Iterable[GlobalId]) -> Dict[str, Any]:
        """Extract everything this server holds about *objects*.

        Removes and returns the couple links, lock entries, floors and
        historical states of the given couple group, in wire form, so a
        cluster router can re-install them on another shard.  The group
        must be quiescent (the router freezes it) — in-flight floors are
        carried across verbatim, including their pending-ack sets.
        """
        objs = set(objects)
        links = self.couples.extract_objects(objs)
        locks = self.locks.transfer_out(sorted(objs))
        floors: List[Dict[str, Any]] = []
        for key, floor_objects in list(self._floors.items()):
            if not objs.intersection(floor_objects):
                continue
            floors.append(
                {
                    "owner": [key[0], key[1]],
                    "objects": [gid_to_wire(g) for g in floor_objects],
                    "granted_at": self._floor_granted_at.get(key, 0.0),
                    "pending_acks": sorted(self._pending_acks.get(key, ())),
                }
            )
            del self._floors[key]
            self._floor_granted_at.pop(key, None)
            self._pending_acks.pop(key, None)
            floor_span = self._floor_spans.pop(key, None)
            if floor_span is not None:
                # The floor migrates to another shard; close its span
                # here rather than leak an open one.
                self.obs.spans.finish(floor_span, migrated=True)
        history = [
            [gid_to_wire(obj), self.history.export_object(obj)]
            for obj in sorted(objs)
            if self.history.depth(obj) != (0, 0)
        ]
        fingerprints = [
            [gid_to_wire(obj), self.fingerprints.pop(obj)]
            for obj in sorted(objs)
            if obj in self.fingerprints
        ]
        return {
            "objects": [gid_to_wire(g) for g in sorted(objs)],
            "links": [link.to_wire() for link in links],
            "locks": [
                [gid_to_wire(obj), owner.to_wire()] for obj, owner in locks
            ],
            "floors": floors,
            "history": history,
            "fingerprints": fingerprints,
        }

    def import_group(self, data: Mapping[str, Any]) -> None:
        """Install a couple group exported by :meth:`export_group`."""
        for link_wire in data.get("links", ()):
            self.couples.add_link(CoupleLink.from_wire(dict(link_wire)))
        self.locks.install(
            (gid_from_wire(obj), LockOwner.from_wire(owner))
            for obj, owner in data.get("locks", ())
        )
        for floor in data.get("floors", ()):
            owner = floor["owner"]
            key = (str(owner[0]), int(owner[1]))
            self._floors[key] = tuple(
                gid_from_wire(g) for g in floor.get("objects", ())
            )
            self._floor_granted_at[key] = float(floor.get("granted_at", 0.0))
            pending = {str(i) for i in floor.get("pending_acks", ())}
            if pending:
                self._pending_acks[key] = pending
        for obj_wire, stacks in data.get("history", ()):
            self.history.import_object(gid_from_wire(obj_wire), dict(stacks))
        for obj_wire, fp in data.get("fingerprints", ()):
            self.fingerprints[gid_from_wire(obj_wire)] = str(fp)

    def _require_router(self, message: Message) -> None:
        if message.sender != ROUTER_ID:
            raise ReproError(
                f"migration messages are router-internal, not for "
                f"{message.sender!r}"
            )

    def _on_migrate_export(self, message: Message) -> None:
        self._require_router(message)
        objects = [gid_from_wire(g) for g in message.payload["objects"]]
        data = self.export_group(objects)
        self._send(message.reply(kinds.MIGRATE_STATE, SERVER_ID, **data))

    def _on_migrate_import(self, message: Message) -> None:
        self._require_router(message)
        self.import_group(message.payload)
        self._send(
            message.reply(
                kinds.MIGRATE_ACK,
                SERVER_ID,
                objects=list(message.payload.get("objects", ())),
            )
        )

    # ------------------------------------------------------------------
    # Shard-worker plane (multi-process clusters; docs/CLUSTER.md)
    # ------------------------------------------------------------------

    def _on_shard_sync(self, message: Message) -> None:
        """Bootstrap a freshly spawned shard with roster and ACL tables.

        A shard added to a live ring has seen none of the session's
        REGISTER/PERMISSION_SET traffic; the router ships it the current
        registration records (original timestamps intact) and the full
        access-control table before any group migrates there.  Journaled,
        so a recovering worker replays its bootstrap before the ops that
        assumed it; idempotent, so a replayed SHARD_SYNC coexists with
        later journaled REGISTERs.
        """
        self._require_router(message)
        payload = message.payload
        for record_wire in payload.get("records", ()):
            record = RegistrationRecord.from_wire(dict(record_wire))
            if record.instance_id in self.registry:
                continue
            self.registry.add(record)
            self.history.revive_instance(record.instance_id)
        access = payload.get("access")
        if access:
            self.access.import_state(dict(access))

    def state_inventory(self) -> List[List[List[str]]]:
        """Stateful object groups, in wire form, for resharding surveys.

        Every couple group plus every singleton carrying server-side
        state (a lock, a floor, history or a cached fingerprint).  The
        router diffs this against hashring ownership to compute the
        minimal set of groups a live ``add_shard``/``remove_shard`` must
        migrate.
        """
        stateful = set(self.locks.locked_objects())
        stateful.update(self.history.objects())
        stateful.update(self.fingerprints)
        for floor_objects in self._floors.values():
            stateful.update(floor_objects)
        groups: List[List[GlobalId]] = []
        for group in self.couples.groups():
            groups.append(sorted(group))
            stateful.difference_update(group)
        for obj in sorted(stateful):
            groups.append([obj])
        return [[gid_to_wire(g) for g in group] for group in groups]

    def _on_shard_inventory(self, message: Message) -> None:
        self._require_router(message)
        self._send(
            message.reply(
                kinds.SHARD_INVENTORY_REPLY,
                SERVER_ID,
                groups=self.state_inventory(),
            )
        )

    # ------------------------------------------------------------------
    # Late-join catch-up (event-sourced persistence; docs/PERSISTENCE.md)
    # ------------------------------------------------------------------

    def _on_catchup_request(self, message: Message) -> None:
        """Serve a joiner the log suffix past its known sequence number.

        Works for unregistered endpoints too — a warm standby catches up
        before it ever registers.  Requires persistence; without a
        journal there is no log to serve and the joiner falls back to
        the full PUSH_STATE path.
        """
        persist = self.persistence
        if persist is None:
            self._send(
                message.error_reply(SERVER_ID, "persistence is not enabled")
            )
            return
        after_seq = int(message.payload.get("after_seq", 0))
        payload = persist.catchup_payload(self, after_seq)
        self._send(message.reply(kinds.CATCHUP_REPLY, SERVER_ID, **payload))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _on_client_error(self, message: Message) -> None:
        """A client failed a forwarded request: route the error onward.

        E.g. a FETCH_STATE forwarded for a CopyFrom whose object has been
        destroyed — the owner's ERROR reply must reach the requester, or it
        would block until timeout.
        """
        route = self._pending.pop(message.reply_to or -1, None)
        if route is None:
            return
        self._send(
            Message(
                kind=kinds.ERROR,
                sender=SERVER_ID,
                to=route.requester,
                payload=dict(message.payload),
                reply_to=route.requester_msg_id,
            )
        )

    def stats(self) -> Dict[str, Any]:
        """Operational counters for experiments and monitoring."""
        return {
            "registered": len(self.registry),
            "couple_links": len(self.couples),
            "couple_groups": len(self.couples.groups()),
            "locks_held": len(self.locks),
            "lock_stats": {
                "acquisitions": self.locks.stats.acquisitions,
                "denials": self.locks.stats.denials,
                "releases": self.locks.stats.releases,
            },
            "history_entries": len(self.history),
            "processed": dict(self.processed),
            "routing": self.routing.snapshot(),
            "closure": dict(self.couples.stats),
            "persistence": (
                self.persistence.stats()
                if self.persistence is not None
                else None
            ),
        }
