"""Historical UI states — undo/redo support of the server database.

"The historical UI states backup the UI states which have been overwritten
when synchronizing by state was applied, and provide the possibility of
undoing/redoing user's actions" (§2.2).

Whenever a synchronization-by-state overwrites a UI object's state, the
receiving instance pushes the *old* state here (HISTORY via the state
messages).  :meth:`HistoryStore.undo` pops the most recent backup; the
state current at undo time goes onto the redo stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import HistoryError
from repro.server.couples import GlobalId


@dataclass(frozen=True)
class HistoricalState:
    """One backed-up UI state of one object."""

    obj: GlobalId
    state: Mapping[str, Any]
    timestamp: float = 0.0
    reason: str = ""        # e.g. "copy_to", "copy_from", "destructive_merge"
    by_user: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {
            "obj": [self.obj[0], self.obj[1]],
            "state": dict(self.state),
            "timestamp": self.timestamp,
            "reason": self.reason,
            "by_user": self.by_user,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "HistoricalState":
        obj = data["obj"]
        return cls(
            obj=(str(obj[0]), str(obj[1])),
            state=dict(data.get("state", {})),
            timestamp=float(data.get("timestamp", 0.0)),
            reason=str(data.get("reason", "")),
            by_user=str(data.get("by_user", "")),
        )


class HistoryStore:
    """Bounded per-object undo and redo stacks."""

    def __init__(self, max_depth: int = 100):
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self._max_depth = max_depth
        self._undo: Dict[GlobalId, List[HistoricalState]] = {}
        self._redo: Dict[GlobalId, List[HistoricalState]] = {}
        #: Instances whose history was dropped by :meth:`forget_instance`.
        #: An export taken before the forget must not resurface through
        #: :meth:`import_object` (e.g. a migration in flight while the
        #: instance terminated); cleared when the instance re-registers.
        self._forgotten: Set[str] = set()

    def push(self, entry: HistoricalState) -> None:
        """Record an overwritten state; clears the object's redo stack."""
        stack = self._undo.setdefault(entry.obj, [])
        stack.append(entry)
        if len(stack) > self._max_depth:
            del stack[0]
        self._redo.pop(entry.obj, None)

    def undo(
        self, obj: GlobalId, current_state: Optional[Mapping[str, Any]] = None
    ) -> HistoricalState:
        """Pop the newest backup of *obj*.

        If *current_state* is given it is pushed onto the redo stack so the
        undo itself can be undone.
        """
        stack = self._undo.get(obj)
        if not stack:
            raise HistoryError(f"no historical state for {obj}")
        entry = stack.pop()
        if not stack:
            del self._undo[obj]
        if current_state is not None:
            redo_stack = self._redo.setdefault(obj, [])
            redo_stack.append(
                HistoricalState(
                    obj=obj,
                    state=dict(current_state),
                    timestamp=entry.timestamp,
                    reason="undo",
                )
            )
            if len(redo_stack) > self._max_depth:
                del redo_stack[0]
        return entry

    def redo(
        self, obj: GlobalId, current_state: Optional[Mapping[str, Any]] = None
    ) -> HistoricalState:
        """Pop the newest redo entry of *obj* (inverse of :meth:`undo`)."""
        stack = self._redo.get(obj)
        if not stack:
            raise HistoryError(f"nothing to redo for {obj}")
        entry = stack.pop()
        if not stack:
            del self._redo[obj]
        if current_state is not None:
            undo_stack = self._undo.setdefault(obj, [])
            undo_stack.append(
                HistoricalState(
                    obj=obj,
                    state=dict(current_state),
                    timestamp=entry.timestamp,
                    reason="redo",
                )
            )
            if len(undo_stack) > self._max_depth:
                del undo_stack[0]
        return entry

    def depth(self, obj: GlobalId) -> Tuple[int, int]:
        """(undo depth, redo depth) for *obj*."""
        return (
            len(self._undo.get(obj, ())),
            len(self._redo.get(obj, ())),
        )

    def peek(self, obj: GlobalId) -> Optional[HistoricalState]:
        stack = self._undo.get(obj)
        return stack[-1] if stack else None

    def export_object(self, obj: GlobalId) -> Dict[str, Any]:
        """Remove and return *obj*'s stacks in wire form (shard migration)."""
        undo = self._undo.pop(obj, [])
        redo = self._redo.pop(obj, [])
        return {
            "undo": [entry.to_wire() for entry in undo],
            "redo": [entry.to_wire() for entry in redo],
        }

    def import_object(self, obj: GlobalId, data: Mapping[str, Any]) -> None:
        """Install stacks previously produced by :meth:`export_object`.

        Stacks of an instance forgotten since the export was taken are
        dropped: the decoupling-on-terminate contract (§3.2) says a dead
        instance's history is gone, and a migration or state import in
        flight across that moment must not resurrect it.
        """
        if obj[0] in self._forgotten:
            return
        undo = [HistoricalState.from_wire(dict(e)) for e in data.get("undo", ())]
        redo = [HistoricalState.from_wire(dict(e)) for e in data.get("redo", ())]
        if undo:
            self._undo.setdefault(obj, []).extend(undo)
            del self._undo[obj][:-self._max_depth]
        if redo:
            self._redo.setdefault(obj, []).extend(redo)
            del self._redo[obj][:-self._max_depth]

    def forget_instance(self, instance_id: str) -> int:
        """Drop all history of a terminated instance; returns entry count.

        The instance is also tombstoned so exports taken before the
        forget cannot resurface through :meth:`import_object`.
        """
        dropped = 0
        for table in (self._undo, self._redo):
            for obj in [o for o in table if o[0] == instance_id]:
                dropped += len(table[obj])
                del table[obj]
        self._forgotten.add(instance_id)
        return dropped

    def revive_instance(self, instance_id: str) -> None:
        """Clear the tombstone of a re-registering instance."""
        self._forgotten.discard(instance_id)

    def forgotten_instances(self) -> List[str]:
        """Currently tombstoned instance ids (persistence snapshots)."""
        return sorted(self._forgotten)

    # ------------------------------------------------------------------
    # Whole-store export (persistence snapshots; non-destructive)
    # ------------------------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """All stacks plus tombstones in wire form, leaving the store as is."""
        objects = sorted(set(self._undo) | set(self._redo))
        return {
            "objects": [
                [
                    [obj[0], obj[1]],
                    {
                        "undo": [e.to_wire() for e in self._undo.get(obj, ())],
                        "redo": [e.to_wire() for e in self._redo.get(obj, ())],
                    },
                ]
                for obj in objects
            ],
            "forgotten": self.forgotten_instances(),
        }

    def import_state(self, data: Mapping[str, Any]) -> None:
        """Replace the store's contents with an :meth:`export_state` dump."""
        self._undo.clear()
        self._redo.clear()
        self._forgotten = {str(i) for i in data.get("forgotten", ())}
        for obj_wire, stacks in data.get("objects", ()):
            obj = (str(obj_wire[0]), str(obj_wire[1]))
            undo = [
                HistoricalState.from_wire(dict(e))
                for e in stacks.get("undo", ())
            ]
            redo = [
                HistoricalState.from_wire(dict(e))
                for e in stacks.get("redo", ())
            ]
            if undo:
                self._undo[obj] = undo[-self._max_depth:]
            if redo:
                self._redo[obj] = redo[-self._max_depth:]

    def objects(self) -> List[GlobalId]:
        return list(self._undo)

    def __len__(self) -> int:
        return sum(len(s) for s in self._undo.values())
