"""Interest-aware routing: one broadcast helper for server and cluster.

The paper's central server exists so that traffic scales with *coupling
interest* rather than population size (§2.2): an event on object ``o``
concerns exactly the instances holding an object in ``CO(o)``.  This
module is the single place where "who receives this message" is decided —
:class:`~repro.server.server.CosoftServer` and
:class:`~repro.cluster.router.ShardedCosoftCluster` both delegate here, so
the interest index cannot drift between the two.

Two delivery modes:

* **full broadcast** — roster changes (INSTANCE_LIST) and, by default,
  COUPLE_UPDATE keep the paper's replicate-everywhere semantics: every
  registered instance gets a copy.
* **interest cast** — the caller passes the *audience* (instance ids
  derived from the couple table's per-component audience index,
  :meth:`CoupleTable.audience_of`); only registered audience members get
  a copy and the suppressed remainder is counted.

:class:`RoutingStats` records both so benchmarks and the monitor can show
delivered-vs-suppressed message counts per event.
"""

from __future__ import annotations

from typing import Any, Callable, Collection, Dict, Iterable, Mapping, Optional, Tuple

from repro.net.message import Message
from repro.net.transport import SERVER_ID

#: Accepted values for the ``couple_scope`` server/session knob:
#: ``"all"`` broadcasts COUPLE_UPDATE to the whole population (the
#: paper's literal replication), ``"group"`` restricts it to the affected
#: couple group's audience.
COUPLE_SCOPES = ("all", "group")


def validate_couple_scope(scope: str) -> str:
    if scope not in COUPLE_SCOPES:
        raise ValueError(
            f"couple_scope must be one of {COUPLE_SCOPES}, got {scope!r}"
        )
    return scope


class RoutingStats:
    """Counters for the routing layer's delivery decisions.

    ``broadcasts``/``broadcast_messages`` count full-population sends;
    ``interest_casts``/``interest_messages`` count audience-scoped sends;
    ``suppressed_messages`` is how many copies a full broadcast would have
    added on top of the scoped delivery — the routing layer's savings.
    ``events``/``event_receivers`` track EVENT_BROADCAST fan-out.
    """

    __slots__ = (
        "broadcasts",
        "broadcast_messages",
        "interest_casts",
        "interest_messages",
        "suppressed_messages",
        "events",
        "event_receivers",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.broadcasts = 0
        self.broadcast_messages = 0
        self.interest_casts = 0
        self.interest_messages = 0
        self.suppressed_messages = 0
        self.events = 0
        self.event_receivers = 0

    def record_event(self, receivers: int) -> None:
        self.events += 1
        self.event_receivers += receivers

    def merge(self, other: "RoutingStats") -> None:
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def register_into(self, registry, **labels: str) -> None:
        """Expose these counters through an obs metrics registry.

        Pull-time collector: no cost is added to the routing hot path.
        """
        from repro.obs.metrics import Sample

        base = tuple(sorted(labels.items()))
        help_of = {
            "broadcasts": "Full-population broadcast sends",
            "broadcast_messages": "Messages delivered by full broadcasts",
            "interest_casts": "Audience-scoped (interest) sends",
            "interest_messages": "Messages delivered by interest casts",
            "suppressed_messages":
                "Copies a full broadcast would have added (savings)",
            "events": "EVENT fan-outs performed",
            "event_receivers": "Total EVENT_BROADCAST receivers",
        }

        def collect():
            for name in self.__slots__:
                yield Sample(
                    f"repro_routing_{name}_total", "counter",
                    help_of[name], base, getattr(self, name),
                )

        registry.register_collector(collect)


def broadcast(
    send: Callable[[Message], None],
    registered: Collection[str],
    kind: str,
    payload: Mapping[str, Any],
    *,
    sender: str = SERVER_ID,
    exclude: Tuple[str, ...] = (),
    audience: Optional[Iterable[str]] = None,
    stats: Optional[RoutingStats] = None,
) -> int:
    """Deliver *payload* to *registered* instances, optionally scoped.

    With ``audience=None`` every registered instance outside *exclude*
    gets a copy (full broadcast).  With an *audience*, only registered
    audience members get one, and the difference to the full population is
    recorded as suppressed traffic.  Returns the number of messages sent.
    """
    if audience is None:
        recipients = [i for i in registered if i not in exclude]
    else:
        membership = (
            registered if isinstance(registered, (set, frozenset, dict))
            else set(registered)
        )
        recipients = sorted(
            i
            for i in set(audience)
            if i in membership and i not in exclude
        )
    for instance_id in recipients:
        send(
            Message(kind=kind, sender=sender, to=instance_id, payload=payload)
        )
    if stats is not None:
        if audience is None:
            stats.broadcasts += 1
            stats.broadcast_messages += len(recipients)
        else:
            stats.interest_casts += 1
            stats.interest_messages += len(recipients)
            population = len(registered) - sum(
                1 for i in exclude if i in registered
            )
            stats.suppressed_messages += max(0, population - len(recipients))
    return len(recipients)
