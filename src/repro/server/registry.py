"""Registration records — one of the four categories of the server database.

"Registration records store the application instance as well as participant
information such as application instance identifier, host name, and user
name, etc." (§2.2, COSOFT architecture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import AlreadyRegisteredError, NotRegisteredError


@dataclass(frozen=True)
class RegistrationRecord:
    """One registered application instance."""

    instance_id: str
    user: str
    host: str = "localhost"
    app_type: str = ""
    registered_at: float = 0.0

    def to_wire(self) -> Dict[str, object]:
        return {
            "instance_id": self.instance_id,
            "user": self.user,
            "host": self.host,
            "app_type": self.app_type,
            "registered_at": self.registered_at,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "RegistrationRecord":
        return cls(
            instance_id=str(data["instance_id"]),
            user=str(data.get("user", "")),
            host=str(data.get("host", "localhost")),
            app_type=str(data.get("app_type", "")),
            registered_at=float(data.get("registered_at", 0.0)),
        )


class Registry:
    """The server's table of registered application instances."""

    def __init__(self) -> None:
        self._records: Dict[str, RegistrationRecord] = {}

    def add(self, record: RegistrationRecord) -> None:
        if record.instance_id in self._records:
            raise AlreadyRegisteredError(
                f"instance {record.instance_id!r} is already registered"
            )
        self._records[record.instance_id] = record

    def remove(self, instance_id: str) -> RegistrationRecord:
        try:
            return self._records.pop(instance_id)
        except KeyError:
            raise NotRegisteredError(instance_id) from None

    def get(self, instance_id: str) -> RegistrationRecord:
        try:
            return self._records[instance_id]
        except KeyError:
            raise NotRegisteredError(instance_id) from None

    def __contains__(self, instance_id: object) -> bool:
        return instance_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def instance_ids(self) -> Tuple[str, ...]:
        return tuple(self._records)

    def records(self) -> List[RegistrationRecord]:
        return list(self._records.values())

    def by_user(self, user: str) -> List[RegistrationRecord]:
        """All instances registered by *user*."""
        return [r for r in self._records.values() if r.user == user]

    def by_app_type(self, app_type: str) -> List[RegistrationRecord]:
        """All instances of one application type (homogeneous set)."""
        return [r for r in self._records.values() if r.app_type == app_type]

    def roster(self) -> List[Dict[str, object]]:
        """Wire form of all records, for INSTANCE_LIST broadcasts."""
        return [r.to_wire() for r in self._records.values()]
