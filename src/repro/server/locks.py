"""The lock table: floor control over couple groups.

"The lock table guarantees that actions occur serially within each group of
coupled objects" (§2.2).  The multiple-execution algorithm (§3.2) acquires
the lock of every object in ``CO(o)`` before an event is broadcast, with
rollback of partial acquisitions on conflict — mirrored here by
:meth:`LockTable.acquire_all`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.server.couples import GlobalId


@dataclass(frozen=True)
class LockOwner:
    """Identifies who holds a lock: the instance and its event sequence."""

    instance_id: str
    token: int = 0

    def to_wire(self) -> List[object]:
        return [self.instance_id, self.token]

    @classmethod
    def from_wire(cls, data: Sequence[object]) -> "LockOwner":
        return cls(instance_id=str(data[0]), token=int(data[1]))


@dataclass
class LockTableStats:
    """Counters the experiments report (E5, E10)."""

    acquisitions: int = 0
    denials: int = 0
    releases: int = 0

    @property
    def denial_rate(self) -> float:
        attempts = self.acquisitions + self.denials
        return self.denials / attempts if attempts else 0.0

    def register_into(self, registry, **labels: str) -> None:
        """Expose these counters through an obs metrics registry."""
        from repro.obs.metrics import Sample

        base = tuple(sorted(labels.items()))

        def collect():
            yield Sample(
                "repro_locks_acquisitions_total", "counter",
                "Group lock acquisitions granted", base, self.acquisitions,
            )
            yield Sample(
                "repro_locks_denials_total", "counter",
                "Group lock acquisitions denied", base, self.denials,
            )
            yield Sample(
                "repro_locks_releases_total", "counter",
                "Group lock releases", base, self.releases,
            )
            yield Sample(
                "repro_locks_denial_rate", "gauge",
                "Denied fraction of lock attempts", base, self.denial_rate,
            )

        registry.register_collector(collect)


class LockTable:
    """Per-object locks with all-or-nothing group acquisition."""

    def __init__(self) -> None:
        self._locks: Dict[GlobalId, LockOwner] = {}
        self.stats = LockTableStats()

    def holder(self, obj: GlobalId) -> Optional[LockOwner]:
        """Current lock holder of *obj*, if any."""
        return self._locks.get(obj)

    def is_locked(self, obj: GlobalId) -> bool:
        return obj in self._locks

    def acquire(self, obj: GlobalId, owner: LockOwner) -> bool:
        """Lock one object.

        Re-acquisition by the same owner succeeds, and a *newer token of
        the same instance* takes the lock over (lock transfer): an
        instance's own events are FIFO-ordered end to end, so its next
        event may start while receivers still process the previous one —
        only *other* instances must wait for the floor.
        """
        current = self._locks.get(obj)
        if current is None or current.instance_id == owner.instance_id:
            self._locks[obj] = owner
            return True
        return False

    def release(self, obj: GlobalId, owner: LockOwner) -> bool:
        """Unlock one object if held by *owner*; returns whether released."""
        if self._locks.get(obj) == owner:
            del self._locks[obj]
            return True
        return False

    def acquire_all(
        self, objects: Iterable[GlobalId], owner: LockOwner
    ) -> Tuple[bool, List[GlobalId]]:
        """Attempt to lock every object in *objects* for *owner*.

        Implements the paper's loop: objects are locked one by one; on the
        first conflict all locks taken so far are undone ("undo locking",
        §3.2).  Returns ``(granted, conflicts)`` where *conflicts* lists the
        objects already locked by someone else (non-empty iff denied).
        """
        taken: List[Tuple[GlobalId, Optional[LockOwner]]] = []
        for obj in objects:
            current = self._locks.get(obj)
            if current is not None and current.instance_id != owner.instance_id:
                # Lock failed: undo the partial acquisition (restoring any
                # transferred locks to their previous owner).
                for locked, previous in taken:
                    if previous is None:
                        self._locks.pop(locked, None)
                    else:
                        self._locks[locked] = previous
                self.stats.denials += 1
                return False, [obj]
            if current != owner:
                self._locks[obj] = owner
                taken.append((obj, current))
        self.stats.acquisitions += 1
        return True, []

    def release_all(self, objects: Iterable[GlobalId], owner: LockOwner) -> int:
        """Release every listed object held by *owner*; returns the count."""
        released = 0
        for obj in objects:
            if self.release(obj, owner):
                released += 1
        if released:
            self.stats.releases += 1
        return released

    def release_owner(self, owner: LockOwner) -> int:
        """Release everything held by *owner* (crash cleanup)."""
        objects = [obj for obj, holder in self._locks.items() if holder == owner]
        for obj in objects:
            del self._locks[obj]
        if objects:
            self.stats.releases += 1
        return len(objects)

    def release_instance(self, instance_id: str) -> int:
        """Release every lock held by any owner of *instance_id*
        (instance terminated while holding the floor)."""
        objects = [
            obj
            for obj, holder in self._locks.items()
            if holder.instance_id == instance_id
        ]
        for obj in objects:
            del self._locks[obj]
        return len(objects)

    def transfer_out(
        self, objects: Iterable[GlobalId]
    ) -> List[Tuple[GlobalId, LockOwner]]:
        """Remove and return the lock entries of *objects* (migration).

        Unlike :meth:`release_all` this bypasses the stats counters: a
        shard migration moves locks, it neither grants nor releases them.
        """
        moved: List[Tuple[GlobalId, LockOwner]] = []
        for obj in objects:
            owner = self._locks.pop(obj, None)
            if owner is not None:
                moved.append((obj, owner))
        return moved

    def install(self, entries: Iterable[Tuple[GlobalId, LockOwner]]) -> None:
        """Install lock entries produced by :meth:`transfer_out`."""
        for obj, owner in entries:
            self._locks[obj] = owner

    def locked_objects(self) -> List[GlobalId]:
        return list(self._locks)

    def __len__(self) -> int:
        return len(self._locks)
