"""The asyncio server runtime: an event loop hosting a sans-I/O endpoint.

The paper's central server (Figure 4) serializes every callback event and
couple update through one dispatch loop; the thread-per-connection TCP
host pays for that serialization with lock contention across all its
reader threads.  :class:`AsyncServerRuntime` keeps the serialization —
the endpoint's ``handle_message`` only ever runs on the event-loop
thread — but drops the threads: one loop accepts, reads, dispatches and
writes for every connection, with outbound batching, bounded send queues
and per-hop retry supplied by
:class:`~repro.net.aio.AioHostTransport` (see docs/RUNTIME.md).

The runtime is **protocol-transparent**: any endpoint with the
``handle_message(Message)`` / ``bind(transport)`` contract runs under it
unchanged — both :class:`~repro.server.server.CosoftServer` and
:class:`~repro.cluster.ShardedCosoftCluster` do.

Example::

    from repro.server.runtime import AsyncServerRuntime
    from repro.server.server import CosoftServer

    runtime = AsyncServerRuntime(CosoftServer())
    host, port = runtime.address
    ...                      # clients connect with TcpClientTransport
    runtime.close()
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Any, Awaitable, Dict, Optional, Tuple, TypeVar

from repro.net.aio import AioHostTransport, BatchConfig
from repro.obs.log import get_logger, log_event

T = TypeVar("T")

_log = get_logger("server.runtime")


class EventLoopThread:
    """A dedicated thread running one asyncio event loop forever.

    The loop is the runtime's single point of serialization: connection
    handling, message dispatch and batched writes are all callbacks on
    it.  Application threads talk to it through :meth:`run` /
    :meth:`call_soon`.
    """

    def __init__(self, name: str = "repro-aio-runtime"):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._main, name=name, daemon=True)
        self._thread.start()

    def _main(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()
        # Drain cancellations scheduled during shutdown, then close.
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self.loop.close()

    def run(self, coro: Awaitable[T], timeout: float = 10.0) -> T:
        """Run *coro* on the loop and block for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def call_soon(self, callback, *args) -> None:
        self.loop.call_soon_threadsafe(callback, *args)

    def stop(self, timeout: float = 5.0) -> None:
        if self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=timeout)


class AsyncServerRuntime:
    """Run a sans-I/O central endpoint on an asyncio event loop.

    Parameters
    ----------
    endpoint:
        A :class:`CosoftServer`, :class:`ShardedCosoftCluster`, or any
        object with the same ``handle_message`` / ``bind`` contract.
    host / port:
        Listen address; port 0 picks a free port.
    config:
        Batching / backpressure / retry knobs (:class:`BatchConfig`).
    codec:
        The outbound wire codec (name or instance) for peers that have
        not yet negotiated one; inbound frames are auto-detected and
        each peer is answered in its own codec (docs/PROTOCOL.md).
    wire_batching:
        When true, multi-message flushes leave as batch envelopes
        (:meth:`~repro.net.codec.Codec.encode_batch`) instead of
        concatenated per-message frames (docs/PROTOCOL.md).
    """

    def __init__(
        self,
        endpoint: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        config: Optional[BatchConfig] = None,
        codec: object = "json",
        wire_batching: bool = False,
    ):
        self.endpoint = endpoint
        self.config = config if config is not None else BatchConfig()
        self._loop_thread = EventLoopThread()
        self.transport = AioHostTransport(
            endpoint.handle_message,
            host,
            port,
            config=self.config,
            loop=self._loop_thread.loop,
            codec=codec,
            wire_batching=wire_batching,
        )
        endpoint.bind(self.transport)
        self._closed = False
        addr = self.transport.address
        log_event(
            _log,
            logging.INFO,
            "runtime_started",
            host=addr[0],
            port=addr[1],
            endpoint=type(endpoint).__name__,
            backpressure=self.config.backpressure,
        )

    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The (host, port) clients connect to."""
        addr = self.transport.address
        return addr[0], addr[1]

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop_thread.loop

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, Any]:
        """Runtime-level counters: traffic, batching, queues, endpoint."""
        transport = self.transport
        snapshot: Dict[str, Any] = {
            "traffic": transport.stats.snapshot(),
            "connections": len(transport.connections()),
            "backpressure": self.config.backpressure,
            "max_batch": self.config.max_batch,
            "max_delay": self.config.max_delay,
        }
        endpoint_stats = getattr(self.endpoint, "stats", None)
        if callable(endpoint_stats):
            snapshot["endpoint"] = endpoint_stats()
        return snapshot

    def close(self) -> None:
        """Stop accepting, drop connections, stop the loop thread."""
        if self._closed:
            return
        self._closed = True
        connections = len(self.transport.connections())
        self.transport.close()
        self._loop_thread.stop()
        log_event(
            _log, logging.INFO, "runtime_stopped", connections=connections
        )

    def __enter__(self) -> "AsyncServerRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
