"""The couple relation: links, transitive closure, couple groups.

From the paper (§3): "A couple link is a directed arc from the source UI
object to destination UI object, labeled with the application instance
identifier which creates the link.  The couple relation C consists of all
pairs of UI objects connected by a couple link.  To compute the set of
objects CO(o) connected to or coupled with a given object o, we use the
transitive closure of C."

Link creation replicates coupling info: "objects already connected to O2
are added to the list of targets, and objects already connected to O1 are
added to the source, thus computing the complete transitive closure"
(§3.2) — i.e. a couple *group* is the connected component of the link
graph, treating links as bidirectional for closure purposes.

This table is used twice: authoritatively on the server, and replicated in
every application instance (updated by COUPLE_UPDATE broadcasts) so each
client can compute CO(o) locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import NoSuchCoupleError

#: The paper's global object identifier: ``<instance-id, pathname>``.
GlobalId = Tuple[str, str]


def global_id(instance_id: str, pathname: str) -> GlobalId:
    """Normalize a global object id."""
    return (str(instance_id), str(pathname))


def gid_to_wire(gid: GlobalId) -> List[str]:
    return [gid[0], gid[1]]


def gid_from_wire(data: Iterable[str]) -> GlobalId:
    items = list(data)
    if len(items) != 2:
        raise ValueError(f"malformed global id {items!r}")
    return (str(items[0]), str(items[1]))


@dataclass(frozen=True)
class CoupleLink:
    """A directed couple arc, labeled with its creating instance."""

    source: GlobalId
    target: GlobalId
    creator: str = ""

    def to_wire(self) -> Dict[str, object]:
        return {
            "source": gid_to_wire(self.source),
            "target": gid_to_wire(self.target),
            "creator": self.creator,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "CoupleLink":
        return cls(
            source=gid_from_wire(data["source"]),  # type: ignore[arg-type]
            target=gid_from_wire(data["target"]),  # type: ignore[arg-type]
            creator=str(data.get("creator", "")),
        )

    @property
    def endpoints(self) -> Tuple[GlobalId, GlobalId]:
        return (self.source, self.target)


class CoupleTable:
    """All current couple links plus the derived group structure.

    Groups (connected components) are maintained incrementally on link
    addition and recomputed lazily after removals.
    """

    def __init__(self) -> None:
        self._links: Set[CoupleLink] = set()
        self._adjacency: Dict[GlobalId, Set[GlobalId]] = {}
        #: Lazily maintained component cache: object -> frozenset(group).
        self._group_cache: Dict[GlobalId, FrozenSet[GlobalId]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_link(self, link: CoupleLink) -> bool:
        """Insert *link*; returns False if it already existed.

        Self-links (object coupled with itself) are rejected; the paper
        allows coupling two *different* objects within one instance, which
        is fine (same instance id, different pathnames).
        """
        if link.source == link.target:
            raise ValueError(f"cannot couple object {link.source} with itself")
        if link in self._links:
            return False
        self._links.add(link)
        self._adjacency.setdefault(link.source, set()).add(link.target)
        self._adjacency.setdefault(link.target, set()).add(link.source)
        self._group_cache.clear()
        return True

    def remove_link(self, source: GlobalId, target: GlobalId) -> List[CoupleLink]:
        """Decouple *source* and *target*: remove every arc between them.

        Arcs may exist in both directions (each side may have coupled to
        the other); decoupling the pair removes them all, so the two
        objects are no longer directly coupled afterwards.
        """
        matches = [
            candidate
            for candidate in self._links
            if candidate.endpoints in ((source, target), (target, source))
        ]
        if not matches:
            raise NoSuchCoupleError(
                f"no couple link between {source} and {target}"
            )
        for candidate in matches:
            self._remove(candidate)
        return matches

    def _remove(self, link: CoupleLink) -> CoupleLink:
        self._links.discard(link)
        # Rebuild adjacency for the two endpoints from the remaining links.
        for endpoint in link.endpoints:
            neighbours = set()
            for other in self._links:
                if other.source == endpoint:
                    neighbours.add(other.target)
                elif other.target == endpoint:
                    neighbours.add(other.source)
            if neighbours:
                self._adjacency[endpoint] = neighbours
            else:
                self._adjacency.pop(endpoint, None)
        self._group_cache.clear()
        return link

    def remove_object(self, obj: GlobalId) -> List[CoupleLink]:
        """Drop every link touching *obj* (widget destroyed, §3.2)."""
        removed = [l for l in self._links if obj in l.endpoints]
        for link in removed:
            self._remove(link)
        return removed

    def remove_instance(self, instance_id: str) -> List[CoupleLink]:
        """Drop every link touching any object of *instance_id*
        (application instance terminated, §3.2)."""
        removed = [
            l
            for l in self._links
            if l.source[0] == instance_id or l.target[0] == instance_id
        ]
        for link in removed:
            self._remove(link)
        return removed

    def remove_subtree(self, instance_id: str, path_prefix: str) -> List[CoupleLink]:
        """Drop links of every object at or below *path_prefix*."""
        def below(gid: GlobalId) -> bool:
            if gid[0] != instance_id:
                return False
            path = gid[1]
            return path == path_prefix or path.startswith(path_prefix.rstrip("/") + "/")

        removed = [
            l for l in self._links if below(l.source) or below(l.target)
        ]
        for link in removed:
            self._remove(link)
        return removed

    def extract_objects(self, objects: Iterable[GlobalId]) -> List[CoupleLink]:
        """Remove and return every link touching any of *objects*.

        Used by shard migration: the extracted links are re-installed on
        the receiving shard via :meth:`add_link`.
        """
        targets = set(objects)
        removed = [
            l
            for l in self._links
            if l.source in targets or l.target in targets
        ]
        for link in removed:
            self._remove(link)
        return removed

    def clear(self) -> None:
        self._links.clear()
        self._adjacency.clear()
        self._group_cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def links(self) -> List[CoupleLink]:
        return list(self._links)

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, link: object) -> bool:
        return link in self._links

    def has_link(self, source: GlobalId, target: GlobalId) -> bool:
        return any(l.endpoints == (source, target) for l in self._links)

    def is_coupled(self, obj: GlobalId) -> bool:
        """Whether *obj* participates in any couple link."""
        return obj in self._adjacency

    def group_of(self, obj: GlobalId) -> FrozenSet[GlobalId]:
        """The couple group of *obj*: ``{obj} ∪ CO(obj)``.

        Returns ``frozenset({obj})`` for an uncoupled object.
        """
        cached = self._group_cache.get(obj)
        if cached is not None:
            return cached
        if obj not in self._adjacency:
            return frozenset({obj})
        # BFS over the undirected closure.
        seen: Set[GlobalId] = {obj}
        frontier = [obj]
        while frontier:
            node = frontier.pop()
            for neighbour in self._adjacency.get(node, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        group = frozenset(seen)
        for member in group:
            self._group_cache[member] = group
        return group

    def coupled_objects(self, obj: GlobalId) -> FrozenSet[GlobalId]:
        """The paper's ``CO(o)``: the group of *obj* excluding *obj* itself."""
        return self.group_of(obj) - {obj}

    def groups(self) -> List[FrozenSet[GlobalId]]:
        """All couple groups with at least two members."""
        seen: Set[GlobalId] = set()
        result: List[FrozenSet[GlobalId]] = []
        for obj in self._adjacency:
            if obj not in seen:
                group = self.group_of(obj)
                seen.update(group)
                result.append(group)
        return result

    def objects_of_instance(self, instance_id: str) -> Set[GlobalId]:
        """All coupled objects belonging to one application instance."""
        return {gid for gid in self._adjacency if gid[0] == instance_id}

    def to_wire(self) -> List[Dict[str, object]]:
        """Wire form of all links (sent to newly registered instances)."""
        return [link.to_wire() for link in self._links]
