"""The couple relation: links, transitive closure, couple groups.

From the paper (§3): "A couple link is a directed arc from the source UI
object to destination UI object, labeled with the application instance
identifier which creates the link.  The couple relation C consists of all
pairs of UI objects connected by a couple link.  To compute the set of
objects CO(o) connected to or coupled with a given object o, we use the
transitive closure of C."

Link creation replicates coupling info: "objects already connected to O2
are added to the list of targets, and objects already connected to O1 are
added to the source, thus computing the complete transitive closure"
(§3.2) — i.e. a couple *group* is the connected component of the link
graph, treating links as bidirectional for closure purposes.

This table is used twice: authoritatively on the server, and replicated in
every application instance (updated by COUPLE_UPDATE broadcasts) so each
client can compute CO(o) locally.

The closure is maintained *incrementally*: a union–find forest merges
components in near-constant time on :meth:`add_link`, links are indexed by
unordered endpoint pair so decoupling never scans the whole relation, and
removals rebuild only the affected component instead of clearing every
cached group.  The table also keeps a per-group *audience* index
(instance id -> coupled pathnames) that the server's interest-aware
routing reads on every event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import NoSuchCoupleError

#: The paper's global object identifier: ``<instance-id, pathname>``.
GlobalId = Tuple[str, str]


def global_id(instance_id: str, pathname: str) -> GlobalId:
    """Normalize a global object id."""
    return (str(instance_id), str(pathname))


def gid_to_wire(gid: GlobalId) -> List[str]:
    return [gid[0], gid[1]]


def gid_from_wire(data: Iterable[str]) -> GlobalId:
    items = list(data)
    if len(items) != 2:
        raise ValueError(f"malformed global id {items!r}")
    return (str(items[0]), str(items[1]))


def _pair(a: GlobalId, b: GlobalId) -> FrozenSet[GlobalId]:
    return frozenset((a, b))


@dataclass(frozen=True)
class CoupleLink:
    """A directed couple arc, labeled with its creating instance."""

    source: GlobalId
    target: GlobalId
    creator: str = ""

    def to_wire(self) -> Dict[str, object]:
        return {
            "source": gid_to_wire(self.source),
            "target": gid_to_wire(self.target),
            "creator": self.creator,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "CoupleLink":
        return cls(
            source=gid_from_wire(data["source"]),  # type: ignore[arg-type]
            target=gid_from_wire(data["target"]),  # type: ignore[arg-type]
            creator=str(data.get("creator", "")),
        )

    @property
    def endpoints(self) -> Tuple[GlobalId, GlobalId]:
        return (self.source, self.target)


class CoupleTable:
    """All current couple links plus the derived group structure.

    Groups (connected components) live in a union–find forest: additions
    merge two components in O(α); removals rebuild only the component the
    removed arcs belonged to.  Per-group caches (the frozen member set and
    the instance -> pathnames audience index) are invalidated per
    component, never globally.
    """

    def __init__(self) -> None:
        self._links: Set[CoupleLink] = set()
        #: Unordered endpoint pair -> the arcs between the two objects.
        self._links_by_pair: Dict[FrozenSet[GlobalId], Set[CoupleLink]] = {}
        #: Undirected multigraph: object -> neighbour -> arc count.
        self._adjacency: Dict[GlobalId, Dict[GlobalId, int]] = {}
        #: Coupled objects per instance (mirror of the adjacency key set).
        self._by_instance: Dict[str, Set[GlobalId]] = {}
        # Union–find forest over the coupled objects.
        self._parent: Dict[GlobalId, GlobalId] = {}
        self._size: Dict[GlobalId, int] = {}
        #: root -> live member set (merged small-into-large on union).
        self._members: Dict[GlobalId, Set[GlobalId]] = {}
        #: root -> frozen group snapshot handed out by :meth:`group_of`.
        self._group_cache: Dict[GlobalId, FrozenSet[GlobalId]] = {}
        #: root -> {instance id -> sorted pathnames} audience index.
        self._audience_cache: Dict[GlobalId, Dict[str, Tuple[str, ...]]] = {}
        #: Closure maintenance counters (see docs/PERF.md).
        self.stats: Dict[str, int] = {
            "unions": 0,
            "component_rebuilds": 0,
            "rebuild_members": 0,
        }

    # ------------------------------------------------------------------
    # Union–find internals
    # ------------------------------------------------------------------

    def _find(self, obj: GlobalId) -> GlobalId:
        parent = self._parent
        root = obj
        while parent[root] != root:
            root = parent[root]
        while parent[obj] != root:  # path compression
            parent[obj], obj = root, parent[obj]
        return root

    def _ensure_node(self, obj: GlobalId) -> None:
        if obj in self._parent:
            return
        self._parent[obj] = obj
        self._size[obj] = 1
        self._members[obj] = {obj}
        self._by_instance.setdefault(obj[0], set()).add(obj)

    def _union(self, a: GlobalId, b: GlobalId) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size.pop(rb)
        self._members[ra].update(self._members.pop(rb))
        self._group_cache.pop(ra, None)
        self._group_cache.pop(rb, None)
        self._audience_cache.pop(ra, None)
        self._audience_cache.pop(rb, None)
        self.stats["unions"] += 1

    def _drop_node(self, obj: GlobalId) -> None:
        """Remove an object that lost its last arc from the forest."""
        instance_objects = self._by_instance.get(obj[0])
        if instance_objects is not None:
            instance_objects.discard(obj)
            if not instance_objects:
                del self._by_instance[obj[0]]

    def _rebuild_component(self, members: Set[GlobalId]) -> None:
        """Recompute the union–find structure of one (former) component.

        Called after removals: the component may have split into several,
        and members without remaining arcs leave the forest entirely.
        Work is confined to ``len(members)`` — the rest of the relation is
        untouched.
        """
        for member in members:
            root = self._parent.pop(member, None)
            if root is None:
                continue
            self._size.pop(member, None)
            self._members.pop(member, None)
            self._group_cache.pop(member, None)
            self._audience_cache.pop(member, None)
        for member in members:
            if member in self._adjacency:
                self._parent[member] = member
                self._size[member] = 1
                self._members[member] = {member}
            else:
                self._drop_node(member)
        for member in members:
            if member not in self._adjacency:
                continue
            for neighbour in self._adjacency[member]:
                self._union(member, neighbour)
        self.stats["component_rebuilds"] += 1
        self.stats["rebuild_members"] += len(members)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_link(self, link: CoupleLink) -> bool:
        """Insert *link*; returns False if it already existed.

        Self-links (object coupled with itself) are rejected; the paper
        allows coupling two *different* objects within one instance, which
        is fine (same instance id, different pathnames).
        """
        if link.source == link.target:
            raise ValueError(f"cannot couple object {link.source} with itself")
        if link in self._links:
            return False
        self._links.add(link)
        pair = _pair(link.source, link.target)
        self._links_by_pair.setdefault(pair, set()).add(link)
        for here, there in (
            (link.source, link.target),
            (link.target, link.source),
        ):
            neighbours = self._adjacency.setdefault(here, {})
            neighbours[there] = neighbours.get(there, 0) + 1
        self._ensure_node(link.source)
        self._ensure_node(link.target)
        self._union(link.source, link.target)
        return True

    def remove_link(self, source: GlobalId, target: GlobalId) -> List[CoupleLink]:
        """Decouple *source* and *target*: remove every arc between them.

        Arcs may exist in both directions (each side may have coupled to
        the other); decoupling the pair removes them all, so the two
        objects are no longer directly coupled afterwards.  The pair index
        makes this O(arcs between the pair), not O(|links|).
        """
        matches = list(self._links_by_pair.get(_pair(source, target), ()))
        if not matches:
            raise NoSuchCoupleError(
                f"no couple link between {source} and {target}"
            )
        self._remove_links(matches)
        return matches

    def _remove_links(self, links: Iterable[CoupleLink]) -> None:
        """Physically remove *links*, then rebuild each affected component."""
        affected: Dict[GlobalId, Set[GlobalId]] = {}
        unique = [l for l in dict.fromkeys(links) if l in self._links]
        for link in unique:
            root = self._find(link.source)
            if root not in affected:
                affected[root] = set(self._members[root])
        for link in unique:
            self._links.discard(link)
            pair = _pair(link.source, link.target)
            bucket = self._links_by_pair.get(pair)
            if bucket is not None:
                bucket.discard(link)
                if not bucket:
                    del self._links_by_pair[pair]
            for here, there in (
                (link.source, link.target),
                (link.target, link.source),
            ):
                neighbours = self._adjacency.get(here)
                if neighbours is None:
                    continue
                count = neighbours.get(there, 0) - 1
                if count > 0:
                    neighbours[there] = count
                else:
                    neighbours.pop(there, None)
                if not neighbours:
                    del self._adjacency[here]
        for members in affected.values():
            self._rebuild_component(members)

    def _links_of_object(self, obj: GlobalId) -> List[CoupleLink]:
        found: List[CoupleLink] = []
        for neighbour in self._adjacency.get(obj, ()):
            found.extend(self._links_by_pair.get(_pair(obj, neighbour), ()))
        return found

    def remove_object(self, obj: GlobalId) -> List[CoupleLink]:
        """Drop every link touching *obj* (widget destroyed, §3.2)."""
        removed = self._links_of_object(obj)
        self._remove_links(removed)
        return removed

    def remove_instance(self, instance_id: str) -> List[CoupleLink]:
        """Drop every link touching any object of *instance_id*
        (application instance terminated, §3.2)."""
        removed: List[CoupleLink] = []
        seen: Set[CoupleLink] = set()
        for obj in list(self._by_instance.get(instance_id, ())):
            for link in self._links_of_object(obj):
                if link not in seen:
                    seen.add(link)
                    removed.append(link)
        self._remove_links(removed)
        return removed

    def remove_subtree(self, instance_id: str, path_prefix: str) -> List[CoupleLink]:
        """Drop links of every object at or below *path_prefix*."""
        prefix = path_prefix.rstrip("/") + "/"

        def below(gid: GlobalId) -> bool:
            return gid[1] == path_prefix or gid[1].startswith(prefix)

        removed: List[CoupleLink] = []
        seen: Set[CoupleLink] = set()
        for obj in list(self._by_instance.get(instance_id, ())):
            if not below(obj):
                continue
            for link in self._links_of_object(obj):
                if link not in seen:
                    seen.add(link)
                    removed.append(link)
        self._remove_links(removed)
        return removed

    def extract_objects(self, objects: Iterable[GlobalId]) -> List[CoupleLink]:
        """Remove and return every link touching any of *objects*.

        Used by shard migration: the extracted links are re-installed on
        the receiving shard via :meth:`add_link`.
        """
        removed: List[CoupleLink] = []
        seen: Set[CoupleLink] = set()
        for obj in objects:
            for link in self._links_of_object(obj):
                if link not in seen:
                    seen.add(link)
                    removed.append(link)
        self._remove_links(removed)
        return removed

    def clear(self) -> None:
        self._links.clear()
        self._links_by_pair.clear()
        self._adjacency.clear()
        self._by_instance.clear()
        self._parent.clear()
        self._size.clear()
        self._members.clear()
        self._group_cache.clear()
        self._audience_cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def links(self) -> List[CoupleLink]:
        return list(self._links)

    def __len__(self) -> int:
        return len(self._links)

    def __contains__(self, link: object) -> bool:
        return link in self._links

    def has_link(self, source: GlobalId, target: GlobalId) -> bool:
        return any(
            l.endpoints == (source, target)
            for l in self._links_by_pair.get(_pair(source, target), ())
        )

    def is_coupled(self, obj: GlobalId) -> bool:
        """Whether *obj* participates in any couple link."""
        return obj in self._adjacency

    def group_of(self, obj: GlobalId) -> FrozenSet[GlobalId]:
        """The couple group of *obj*: ``{obj} ∪ CO(obj)``.

        Returns ``frozenset({obj})`` for an uncoupled object.
        """
        if obj not in self._parent:
            return frozenset({obj})
        root = self._find(obj)
        cached = self._group_cache.get(root)
        if cached is None:
            cached = frozenset(self._members[root])
            self._group_cache[root] = cached
        return cached

    def coupled_objects(self, obj: GlobalId) -> FrozenSet[GlobalId]:
        """The paper's ``CO(o)``: the group of *obj* excluding *obj* itself."""
        return self.group_of(obj) - {obj}

    def groups(self) -> List[FrozenSet[GlobalId]]:
        """All couple groups with at least two members."""
        return [self.group_of(root) for root in list(self._members)]

    def audience_of(self, obj: GlobalId) -> Dict[str, Tuple[str, ...]]:
        """The interest index entry for *obj*'s couple group.

        Maps each application instance holding a member of the group to
        the sorted pathnames it holds there.  Cached per component and
        invalidated only when that component changes — this is the lookup
        the interest-aware routing layer performs per event.
        """
        if obj not in self._parent:
            return {obj[0]: (obj[1],)}
        root = self._find(obj)
        cached = self._audience_cache.get(root)
        if cached is None:
            by_instance: Dict[str, List[str]] = {}
            for member in self._members[root]:
                by_instance.setdefault(member[0], []).append(member[1])
            cached = {
                instance: tuple(sorted(paths))
                for instance, paths in by_instance.items()
            }
            self._audience_cache[root] = cached
        return cached

    def group_instances(self, obj: GlobalId) -> FrozenSet[str]:
        """The instance ids holding any member of *obj*'s couple group."""
        return frozenset(self.audience_of(obj))

    def links_of_group(self, obj: GlobalId) -> List[CoupleLink]:
        """Every link inside *obj*'s couple group (deduplicated).

        Sent with interest-scoped "add" updates so instances that just
        joined a group learn its pre-existing internal links.
        """
        if obj not in self._parent:
            return []
        root = self._find(obj)
        found: List[CoupleLink] = []
        seen: Set[CoupleLink] = set()
        for member in self._members[root]:
            for link in self._links_of_object(member):
                if link not in seen:
                    seen.add(link)
                    found.append(link)
        return found

    def objects_of_instance(self, instance_id: str) -> Set[GlobalId]:
        """All coupled objects belonging to one application instance."""
        return set(self._by_instance.get(instance_id, ()))

    def to_wire(self) -> List[Dict[str, object]]:
        """Wire form of all links (sent to newly registered instances)."""
        return [link.to_wire() for link in self._links]
