"""The central COSOFT server and its four-category database (§2.2)."""

from repro.server.couples import (
    CoupleLink,
    CoupleTable,
    GlobalId,
    gid_from_wire,
    gid_to_wire,
    global_id,
)
from repro.server.history import HistoricalState, HistoryStore
from repro.server.locks import LockOwner, LockTable, LockTableStats
from repro.server.permissions import (
    COUPLE,
    READ,
    RIGHTS,
    WRITE,
    AccessControl,
    PermissionRule,
)
from repro.server.registry import RegistrationRecord, Registry
from repro.server.server import SERVER_ID, CosoftServer

__all__ = [
    "AccessControl",
    "COUPLE",
    "CosoftServer",
    "CoupleLink",
    "CoupleTable",
    "GlobalId",
    "HistoricalState",
    "HistoryStore",
    "LockOwner",
    "LockTable",
    "LockTableStats",
    "PermissionRule",
    "READ",
    "RIGHTS",
    "RegistrationRecord",
    "Registry",
    "SERVER_ID",
    "WRITE",
    "gid_from_wire",
    "gid_to_wire",
    "global_id",
]
