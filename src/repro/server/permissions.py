"""Access permissions — the server database's access-control category.

"Access permissions are three-valued tuples with user ID, UI state
identifier, and access right category" (§2.2).  The UI state identifier is
a global object id; we additionally allow ``*`` wildcards on the instance
and pathname-prefix matching, which is what the classroom application
needs ("teacher may couple with anything, students only with the public
exercise area").

Right categories:

* ``read``   — may fetch the object's UI state (CopyFrom source side);
* ``write``  — may overwrite the object's state or send events to it;
* ``couple`` — may create/remove couple links touching the object.

Policy: an operation is allowed if *any* matching grant exists, or if no
rule at all matches and the table's ``default_allow`` is set (the paper's
training scenario starts permissive and restricts selectively).
Deny rules override grants of equal or narrower scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.server.couples import GlobalId

READ = "read"
WRITE = "write"
COUPLE = "couple"
RIGHTS = (READ, WRITE, COUPLE)


@dataclass(frozen=True)
class PermissionRule:
    """One access-permission tuple, possibly wildcarded."""

    user: str            # user name or "*"
    instance_id: str     # instance id or "*"
    path_prefix: str     # pathname prefix ("" or "/" matches everything)
    right: str           # one of RIGHTS or "*"
    allow: bool = True

    def __post_init__(self) -> None:
        if self.right not in RIGHTS and self.right != "*":
            raise ValueError(f"unknown access right {self.right!r}")

    def matches(self, user: str, obj: GlobalId, right: str) -> bool:
        if self.user not in ("*", user):
            return False
        if self.instance_id not in ("*", obj[0]):
            return False
        if self.right not in ("*", right):
            return False
        prefix = self.path_prefix
        if prefix in ("", "/"):
            return True
        path = obj[1]
        return path == prefix or path.startswith(prefix.rstrip("/") + "/")

    @property
    def specificity(self) -> int:
        """Rule precision: more concrete rules win over wildcards."""
        score = 0
        if self.user != "*":
            score += 4
        if self.instance_id != "*":
            score += 2
        if self.path_prefix not in ("", "/"):
            score += len(self.path_prefix.split("/"))
        if self.right != "*":
            score += 1
        return score

    def to_wire(self) -> Dict[str, object]:
        return {
            "user": self.user,
            "instance_id": self.instance_id,
            "path_prefix": self.path_prefix,
            "right": self.right,
            "allow": self.allow,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, object]) -> "PermissionRule":
        return cls(
            user=str(data.get("user", "*")),
            instance_id=str(data.get("instance_id", "*")),
            path_prefix=str(data.get("path_prefix", "")),
            right=str(data.get("right", "*")),
            allow=bool(data.get("allow", True)),
        )


class AccessControl:
    """The table of :class:`PermissionRule` entries with decision logic."""

    def __init__(self, *, default_allow: bool = True):
        self.default_allow = default_allow
        self._rules: List[PermissionRule] = []

    def add(self, rule: PermissionRule) -> None:
        if rule not in self._rules:
            self._rules.append(rule)

    def grant(
        self,
        user: str,
        instance_id: str = "*",
        path_prefix: str = "",
        right: str = "*",
    ) -> PermissionRule:
        rule = PermissionRule(user, instance_id, path_prefix, right, allow=True)
        self.add(rule)
        return rule

    def deny(
        self,
        user: str,
        instance_id: str = "*",
        path_prefix: str = "",
        right: str = "*",
    ) -> PermissionRule:
        rule = PermissionRule(user, instance_id, path_prefix, right, allow=False)
        self.add(rule)
        return rule

    def remove(self, rule: PermissionRule) -> bool:
        try:
            self._rules.remove(rule)
            return True
        except ValueError:
            return False

    def check(self, user: str, obj: GlobalId, right: str) -> bool:
        """Decide whether *user* may exercise *right* on *obj*.

        The most specific matching rule decides; ties break toward deny.
        With no matching rule, ``default_allow`` decides.
        """
        matching = [r for r in self._rules if r.matches(user, obj, right)]
        if not matching:
            return self.default_allow
        best = max(r.specificity for r in matching)
        winners = [r for r in matching if r.specificity == best]
        return all(r.allow for r in winners)

    def rules(self) -> List[PermissionRule]:
        return list(self._rules)

    def forget_instance(self, instance_id: str) -> int:
        """Drop rules scoped to a terminated instance."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.instance_id != instance_id]
        return before - len(self._rules)

    def export_state(self) -> Dict[str, object]:
        """The full table in wire form (persistence snapshots)."""
        return {
            "default_allow": self.default_allow,
            "rules": [r.to_wire() for r in self._rules],
        }

    def import_state(self, data: Dict[str, object]) -> None:
        """Replace the table with an :meth:`export_state` dump."""
        self.default_allow = bool(data.get("default_allow", self.default_allow))
        self._rules = [
            PermissionRule.from_wire(dict(r))  # type: ignore[arg-type]
            for r in data.get("rules", ())  # type: ignore[union-attr]
        ]

    def __len__(self) -> int:
        return len(self._rules)
