"""A stdlib HTTP endpoint exposing a deployment's metrics to Prometheus.

``SessionConfig(metrics_port=...)`` starts one of these next to the
session: a :class:`~http.server.ThreadingHTTPServer` on a daemon thread
serving

* ``/metrics`` — Prometheus 0.0.4 text exposition,
* ``/metrics.json`` — the JSON rendering,
* ``/spans`` — the human-readable span dump,
* ``/healthz`` — liveness (200 ``ok``).

Every request re-collects through the session's
:class:`~repro.obs.Observability` — including its registered refreshers,
so on a multi-process cluster a scrape transparently delta-pulls every
worker first.  Scrapes run on the HTTP thread, never the message path.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

__all__ = ["MetricsHTTPServer"]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        obs = self.server.obs  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = obs.metrics_text()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = obs.metrics_json()
            content_type = "application/json; charset=utf-8"
        elif path == "/spans":
            body = obs.span_dump()
            content_type = "text/plain; charset=utf-8"
        elif path == "/healthz":
            body = "ok\n"
            content_type = "text/plain; charset=utf-8"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        payload = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        pass  # scrapes are periodic; stderr noise helps nobody


class MetricsHTTPServer:
    """Serve one Observability over HTTP until :meth:`close`."""

    def __init__(self, obs, host: str = "127.0.0.1", port: int = 0):
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.obs = obs  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
