"""Exporters: Prometheus text and JSON views of metrics and spans."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import Sample
from repro.obs.tracing import SpanRecorder


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in labels
    )
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(samples: Iterable[Sample]) -> str:
    """Prometheus text exposition format (version 0.0.4) of *samples*.

    Samples of the same family share one ``# HELP`` / ``# TYPE`` header;
    histograms expand into ``_bucket{le=...}`` / ``_sum`` / ``_count``
    series.
    """
    lines: List[str] = []
    seen_header = set()
    for sample in samples:
        if sample.name not in seen_header:
            seen_header.add(sample.name)
            if sample.help:
                lines.append(f"# HELP {sample.name} {sample.help}")
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if sample.kind == "histogram":
            hist = sample.value
            for bound, cumulative in hist["buckets"]:
                labels = sample.labels + (("le", bound),)
                lines.append(
                    f"{sample.name}_bucket{_labels_text(labels)} {cumulative}"
                )
            base = _labels_text(sample.labels)
            lines.append(
                f"{sample.name}_sum{base} {_format_value(hist['sum'])}"
            )
            lines.append(f"{sample.name}_count{base} {hist['count']}")
        else:
            lines.append(
                f"{sample.name}{_labels_text(sample.labels)} "
                f"{_format_value(sample.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(
    samples: Iterable[Sample],
    spans: Optional[SpanRecorder] = None,
    *,
    indent: Optional[int] = 2,
) -> str:
    """One JSON document holding every metric (and optionally spans)."""
    doc: Dict[str, Any] = {"metrics": []}
    for sample in samples:
        doc["metrics"].append(
            {
                "name": sample.name,
                "kind": sample.kind,
                "help": sample.help,
                "labels": dict(sample.labels),
                "value": sample.value,
            }
        )
    if spans is not None:
        doc["spans"] = spans_to_dicts(spans)
        doc["span_stats"] = spans.stats()
    return json.dumps(doc, indent=indent, sort_keys=True, default=str)


def spans_to_dicts(recorder: SpanRecorder) -> List[Dict[str, Any]]:
    return [span.to_dict() for span in recorder.spans()]


def render_span_dump(recorder: SpanRecorder) -> str:
    """Human-readable indented dump of every buffered trace tree."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        duration = node["duration"]
        took = f" {duration * 1e3:.3f}ms" if duration is not None else " (open)"
        attrs = node["attrs"]
        extra = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{node['name']} [{node['span_id']}"
            f"@{node['endpoint']}]{took}{extra}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for trace_id in recorder.trace_ids():
        lines.append(f"trace {trace_id}")
        for root in recorder.tree(trace_id):
            walk(root, 1)
    return "\n".join(lines) + ("\n" if lines else "")
