"""Cross-process metric transfer: serialize, diff and merge samples.

The multi-process cluster (:mod:`repro.cluster.proc`) hosts the real
shard servers in worker subprocesses, so their registries are invisible
to the supervisor's :class:`~repro.obs.metrics.MetricsRegistry`.  This
module moves samples over the router↔worker admin link:

* :func:`sample_to_wire` / :func:`sample_from_wire` — a JSON-safe
  encoding of :class:`~repro.obs.metrics.Sample` (histogram snapshots
  included) that survives any negotiated link codec.
* :class:`SampleDiffer` — worker side.  Tracks what the supervisor has
  already seen (keyed by an *epoch* token that changes on process
  restart) and answers each pull with only the samples whose values
  changed, falling back to a full set when the epochs disagree.
* :class:`ShardSampleCache` — supervisor side.  Holds the merged view of
  one worker, re-labels every sample with ``shard=<id>``, and exposes it
  as a registry collector so ``Session.metrics_text()`` covers the
  whole fleet.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import Sample

#: Label appended by the supervisor to every worker-sourced sample.
SHARD_LABEL = "shard"


def sample_to_wire(sample: Sample) -> List[Any]:
    """Encode one sample as a JSON-safe list."""
    value = sample.value
    if isinstance(value, dict) and "buckets" in value:
        value = {
            "buckets": [[bound, count] for bound, count in value["buckets"]],
            "count": value["count"],
            "sum": value["sum"],
        }
    return [
        sample.name,
        sample.kind,
        sample.help,
        [[k, v] for k, v in sample.labels],
        value,
    ]


def sample_from_wire(data: Sequence[Any]) -> Sample:
    """Decode :func:`sample_to_wire` output back into a :class:`Sample`."""
    name, kind, help_, labels, value = data
    if isinstance(value, dict) and "buckets" in value:
        value = {
            "buckets": [
                (str(bound), count) for bound, count in value["buckets"]
            ],
            "count": value["count"],
            "sum": value["sum"],
        }
    return Sample(
        name,
        kind,
        help_,
        tuple((str(k), str(v)) for k, v in labels),
        value,
    )


def _sample_key(
    name: str, labels: Iterable[Tuple[str, str]]
) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    return (name, tuple(labels))


class SampleDiffer:
    """Worker-side delta cache: ship only samples that changed.

    Each worker process owns one differ.  The *epoch* token is unique per
    process incarnation, so a supervisor that talked to the previous
    incarnation (before a crash/respawn) automatically receives a full
    snapshot instead of a bogus delta.
    """

    def __init__(self, epoch: Optional[str] = None):
        self.epoch = epoch or f"{os.getpid()}-{time.time_ns()}"
        self._last: Dict[Any, Any] = {}
        self._lock = threading.Lock()

    def diff(
        self, samples: Iterable[Sample], since: Optional[str]
    ) -> Tuple[str, bool, List[List[Any]]]:
        """``(epoch, full, wire_samples)`` for one pull.

        *since* is the epoch the puller last saw (``None``/mismatch →
        full snapshot).  Histogram values compare by snapshot dict, so a
        single new observation marks the whole family sample changed —
        exactly the granularity the supervisor caches at.
        """
        with self._lock:
            full = since != self.epoch
            if full:
                self._last.clear()
            out: List[List[Any]] = []
            for sample in samples:
                key = _sample_key(sample.name, sample.labels)
                if full or self._last.get(key) != sample.value:
                    self._last[key] = sample.value
                    out.append(sample_to_wire(sample))
            return self.epoch, full, out


class ShardSampleCache:
    """Supervisor-side merged view of one worker's samples."""

    def __init__(self, shard_id: str):
        self.shard_id = str(shard_id)
        self.epoch: Optional[str] = None
        self._samples: Dict[Any, Sample] = {}
        self._lock = threading.Lock()
        self.pulls = 0
        self.full_pulls = 0
        self.samples_received = 0

    def apply(
        self, epoch: str, full: bool, wire_samples: Sequence[Sequence[Any]]
    ) -> int:
        """Merge one OBS reply; returns the number of samples applied."""
        with self._lock:
            if full or epoch != self.epoch:
                self._samples.clear()
                self.full_pulls += 1
            self.epoch = epoch
            self.pulls += 1
            applied = 0
            for data in wire_samples:
                sample = sample_from_wire(data)
                self._samples[_sample_key(sample.name, sample.labels)] = sample
                applied += 1
            self.samples_received += applied
            return applied

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()
            self.epoch = None

    def collect(self) -> List[Sample]:
        """Cached worker samples, re-labeled with ``shard=<id>``.

        A worker sample that already carries a ``shard`` label (none do
        today) is passed through unchanged rather than double-labeled.
        """
        with self._lock:
            cached = list(self._samples.values())
        out: List[Sample] = []
        for sample in cached:
            labels = sample.labels
            if not any(k == SHARD_LABEL for k, _ in labels):
                labels = labels + ((SHARD_LABEL, self.shard_id),)
            out.append(sample._replace(labels=labels))
        return out
