"""Causal tracing: spans over the multiple-execution message path.

A *trace* follows one user action through the deployment: the client
emits an event (root span), waits for the floor, the server receives the
EVENT, fans it out to the coupled audience, and each remote instance
re-executes it (paper §3.2, Figure 4).  Each hop records a :class:`Span`
— ``(trace_id, span_id, parent_id, name, endpoint, start, end, attrs)``
— into a bounded ring buffer, so end-to-end synchronization latency
decomposes into queue / lock / route / apply segments.

Span identifiers are deterministic (``t1``, ``s1``, ``s2`` … from
per-recorder counters): two identical runs on different backends produce
identical span *trees*, which the parity tests rely on.  Timestamps come
from :func:`time.perf_counter` — one monotonic timebase shared by every
endpoint of an in-process deployment, so cross-endpoint durations are
meaningful.

The trace context travels on the wire as ``Message.trace``, a
``(trace_id, parent_span_id)`` pair (see :mod:`repro.net.message`); it is
absent (``None``) unless observability is enabled, keeping the encoded
frames byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Canonical span names, in causal order along the §3.2 path.
CLIENT_EMIT = "client.emit"          # root: user action enters the toolkit
CLIENT_LOCK_WAIT = "client.lock_wait"  # blocking floor-request round trip
SERVER_LOCK = "server.lock_wait"     # server handles LOCK_REQUEST
SERVER_FLOOR = "server.floor_held"   # grant .. release of the floor
SERVER_RECEIVE = "server.receive"    # server handles the EVENT
SERVER_BROADCAST = "server.broadcast"  # fan-out to the coupled audience
CLUSTER_ROUTE = "cluster.route"      # front-end router -> owning shard
CLUSTER_FORWARD = "cluster.forward"  # supervisor -> worker process hop
WORKER_APPLY = "worker.apply"        # worker process applies a forward
REMOTE_APPLY = "remote.apply"        # remote instance re-executes
SERVER_ACK = "server.ack"            # server handles an EVENT_ACK


@dataclass
class Span:
    """One timed hop of a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    endpoint: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "endpoint": self.endpoint,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Bounded ring buffer of spans, shared by one deployment.

    All endpoints of a Session (instances, server, cluster router) write
    into a single recorder, so one dump shows complete causal trees.  The
    buffer holds the most recent *maxlen* spans; evictions are counted,
    never silently hidden.
    """

    def __init__(
        self,
        maxlen: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
        id_prefix: str = "",
    ):
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self._spans: Deque[Span] = deque(maxlen=maxlen)
        self._maxlen = maxlen
        self._clock = clock
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        #: Prepended to generated ids so recorders in different processes
        #: (e.g. shard workers) mint globally-unique span ids that can be
        #: merged into one supervisor-side buffer without collisions.
        self.id_prefix = id_prefix
        self.evicted = 0
        # Ship/ingest bookkeeping for cross-process span transfer.
        self._shipped: Dict[str, bool] = {}      # span_id -> finished at ship
        self._ingest_index: Dict[str, Span] = {}  # span_id -> buffered span

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def new_trace_id(self) -> str:
        return f"{self.id_prefix}t{next(self._trace_ids)}"

    def start(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        endpoint: str = "",
        **attrs: Any,
    ) -> Span:
        """Open a span (a fresh trace if *trace_id* is None) and buffer it."""
        if trace_id is None:
            trace_id = self.new_trace_id()
        span = Span(
            trace_id=trace_id,
            span_id=f"{self.id_prefix}s{next(self._span_ids)}",
            parent_id=parent_id,
            name=name,
            endpoint=endpoint,
            start=self._clock(),
            attrs=attrs,
        )
        if len(self._spans) == self._maxlen:
            self.evicted += 1
        self._spans.append(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        if span.end is None:
            span.end = self._clock()
        if attrs:
            span.attrs.update(attrs)
        return span

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        if trace_id is None:
            return list(self._spans)
        return [s for s in self._spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids currently buffered, oldest first."""
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def tree(self, trace_id: str) -> List[Dict[str, Any]]:
        """The trace as nested dicts (children sorted by start time)."""
        spans = self.spans(trace_id)
        by_id = {s.span_id: s.to_dict() for s in spans}
        for node in by_id.values():
            node["children"] = []
        roots: List[Dict[str, Any]] = []
        for span in spans:
            node = by_id[span.span_id]
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        for node in by_id.values():
            node["children"].sort(key=lambda c: (c["start"], c["span_id"]))
        return roots

    def canonical_tree(self, trace_id: str) -> Tuple:
        """A timestamp-free shape of the trace: nested (name, children)
        tuples with children sorted by name.  Two runs of the same
        workload yield equal canonical trees regardless of backend,
        shard count or timing — the parity tests compare these."""

        def strip(node: Dict[str, Any]) -> Tuple:
            children = tuple(
                sorted(strip(child) for child in node["children"])
            )
            return (node["name"], children)

        return tuple(sorted(strip(root) for root in self.tree(trace_id)))

    def stats(self) -> Dict[str, Any]:
        spans = list(self._spans)
        return {
            "spans": len(spans),
            "maxlen": self._maxlen,
            "evicted": self.evicted,
            "open": sum(1 for s in spans if not s.finished),
            "traces": len(self.trace_ids()),
        }

    # ------------------------------------------------------------------
    # Cross-process transfer
    # ------------------------------------------------------------------

    def drain(self) -> List[Dict[str, Any]]:
        """Spans new or newly finished since the last :meth:`drain`.

        Used by shard workers answering an OBS pull: each call ships only
        the delta.  Open spans are re-shipped on a later drain once they
        finish, so the receiving side eventually sees final timestamps.
        """
        out: List[Dict[str, Any]] = []
        live = set()
        for span in self._spans:
            live.add(span.span_id)
            prev = self._shipped.get(span.span_id)
            if prev is None or (prev is False and span.finished):
                out.append(span.to_dict())
                self._shipped[span.span_id] = span.finished
        # Forget ship-state for spans evicted from the ring.
        if len(self._shipped) > len(live):
            for span_id in list(self._shipped):
                if span_id not in live:
                    del self._shipped[span_id]
        return out

    def ingest(self, span_dicts: List[Dict[str, Any]]) -> int:
        """Merge span dicts from another recorder (upsert by span_id).

        A span already buffered from an earlier ingest is updated in
        place (it may have been open then and finished now); unseen spans
        are appended.  Returns the number of spans applied.
        """
        applied = 0
        for data in span_dicts:
            span_id = data.get("span_id")
            if not span_id:
                continue
            existing = self._ingest_index.get(span_id)
            if existing is not None and existing in self._spans:
                existing.end = data.get("end")
                attrs = data.get("attrs")
                if attrs:
                    existing.attrs.update(attrs)
                applied += 1
                continue
            span = Span(
                trace_id=data.get("trace_id", ""),
                span_id=span_id,
                parent_id=data.get("parent_id"),
                name=data.get("name", ""),
                endpoint=data.get("endpoint", ""),
                start=data.get("start", 0.0),
                end=data.get("end"),
                attrs=dict(data.get("attrs") or {}),
            )
            if len(self._spans) == self._maxlen:
                self.evicted += 1
            self._spans.append(span)
            self._ingest_index[span_id] = span
            applied += 1
        if len(self._ingest_index) > 2 * self._maxlen:
            buffered = {s.span_id for s in self._spans}
            for span_id in list(self._ingest_index):
                if span_id not in buffered:
                    del self._ingest_index[span_id]
        return applied

    def clear(self) -> None:
        self._spans.clear()
        self.evicted = 0
        self._shipped.clear()
        self._ingest_index.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self):
        return iter(list(self._spans))


#: Latency histogram segments derived from span names, for
#: :func:`observe_latencies`.
_SEGMENT_OF = {
    CLIENT_EMIT: "e2e",
    CLIENT_LOCK_WAIT: "lock",
    SERVER_LOCK: "lock_server",
    SERVER_FLOOR: "floor_held",
    SERVER_RECEIVE: "queue",
    SERVER_BROADCAST: "route",
    CLUSTER_ROUTE: "route_shard",
    CLUSTER_FORWARD: "forward",
    WORKER_APPLY: "worker_apply",
    REMOTE_APPLY: "apply",
    SERVER_ACK: "ack",
}


def observe_latencies(recorder: SpanRecorder, registry, seen=None) -> int:
    """Fold finished span durations into per-segment latency histograms.

    Each span name maps to a segment label of the
    ``repro_sync_latency_seconds`` histogram family, decomposing
    end-to-end sync latency (the root ``client.emit`` span) into
    queue / lock / route / apply parts.  Returns the number of spans
    observed.

    With a *seen* set the fold is incremental: spans whose ids are in
    the set are skipped and newly folded ids are added, so the caller
    can re-fold on every export without double counting.
    """
    family = registry.histogram(
        "repro_sync_latency_seconds",
        help="Per-segment synchronization latency from trace spans",
        labelnames=("segment",),
    )
    observed = 0
    for span in recorder.spans():
        duration = span.duration
        if duration is None:
            continue
        if seen is not None:
            if span.span_id in seen:
                continue
            seen.add(span.span_id)
        segment = _SEGMENT_OF.get(span.name, span.name)
        family.labels(segment).observe(duration)
        observed += 1
    return observed
