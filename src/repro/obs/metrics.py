"""The metrics registry: counters, gauges and log-scale histograms.

One deployment accumulates operational numbers in several ad-hoc stats
classes (:class:`~repro.net.transport.TrafficStats`,
:class:`~repro.server.routing.RoutingStats`,
:class:`~repro.server.locks.LockTableStats`,
:class:`~repro.core.compat.MatchStats`).  The registry unifies them:
metric *families* (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
are created once and updated on the hot path, while the legacy stats
objects register *collectors* — callables polled at snapshot time — so a
single :meth:`MetricsRegistry.collect` captures the whole deployment
without touching any hot path twice.

Everything is pull-based and allocation-light; rendering to JSON or
Prometheus text lives in :mod:`repro.obs.export`.  When observability is
disabled, :data:`NULL_REGISTRY` supplies the same API as no-ops, so
instrumented code pays one attribute load and a falsy check.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Sequence,
    Tuple,
)


class Sample(NamedTuple):
    """One measured value of a metric family at collect time."""

    name: str
    kind: str                 # "counter" | "gauge" | "histogram"
    help: str
    labels: Tuple[Tuple[str, str], ...]
    value: Any                # number, or a histogram snapshot dict


def log_buckets(
    start: float = 1e-6, factor: float = 4.0, count: int = 12
) -> Tuple[float, ...]:
    """Fixed log-scale histogram bounds: ``start * factor**i``.

    The default spans 1 µs .. ~4 s — wide enough for both the simulated
    network's sub-millisecond hops and real-socket round trips.
    """
    if start <= 0 or factor <= 1 or count <= 0:
        raise ValueError("need start > 0, factor > 1, count > 0")
    return tuple(start * factor ** i for i in range(count))


#: Default bounds for latency histograms (seconds).
DEFAULT_LATENCY_BUCKETS = log_buckets()


def _label_key(
    labelnames: Sequence[str], values: Sequence[str]
) -> Tuple[Tuple[str, str], ...]:
    if len(values) != len(labelnames):
        raise ValueError(
            f"expected labels {tuple(labelnames)}, got {len(values)} values"
        )
    return tuple(zip(labelnames, (str(v) for v in values)))


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class _HistogramChild:
    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.bucket_counts[lo] += 1

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative buckets in exposition order plus count/sum."""
        cumulative: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            cumulative.append((repr(bound), running))
        cumulative.append(("+Inf", self.count))
        return {"buckets": cumulative, "count": self.count, "sum": self.sum}


_CHILD_TYPES = {
    "counter": _CounterChild,
    "gauge": _GaugeChild,
    "histogram": _HistogramChild,
}


class MetricFamily:
    """A named metric with a fixed label schema and one child per label set."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._children: Dict[Tuple[Tuple[str, str], ...], Any] = {}

    def labels(self, *values: str) -> Any:
        """The child tracking one concrete label-value combination."""
        key = _label_key(self.labelnames, values)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = _HistogramChild(self.buckets)
            else:
                child = _CHILD_TYPES[self.kind]()
            self._children[key] = child
        return child

    # Unlabeled conveniences (families with no labelnames) --------------

    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def samples(self) -> Iterable[Sample]:
        for key, child in sorted(self._children.items()):
            value = (
                child.snapshot() if self.kind == "histogram" else child.value
            )
            yield Sample(self.name, self.kind, self.help, key, value)


Collector = Callable[[], Iterable[Sample]]


class MetricsRegistry:
    """All metric families of one deployment, plus pull-time collectors."""

    enabled = True

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Collector] = []

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, labelnames, buckets)
            self._families[name] = family
            return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} re-registered with a different "
                f"kind/label schema"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, buckets)

    def register_collector(self, collector: Collector) -> None:
        """Add a pull-time source (e.g. a legacy stats object's view)."""
        self._collectors.append(collector)

    def collect(self) -> List[Sample]:
        """Every sample the deployment currently exposes.

        Family samples first, then collector output, sorted by metric
        name and labels so renderings are deterministic.
        """
        samples: List[Sample] = []
        for family in self._families.values():
            samples.extend(family.samples())
        for collector in self._collectors:
            samples.extend(collector())
        samples.sort(key=lambda s: (s.name, s.labels))
        return samples

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict summary: ``{name: {label-string: value}}``."""
        out: Dict[str, Any] = {}
        for sample in self.collect():
            label_str = ",".join(f"{k}={v}" for k, v in sample.labels)
            out.setdefault(sample.name, {})[label_str] = sample.value
        return out


class _NullChild:
    __slots__ = ()

    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1) -> None: ...
    def dec(self, amount: float = 1) -> None: ...
    def set(self, value: float) -> None: ...
    def observe(self, value: float) -> None: ...


_NULL_CHILD = _NullChild()


class _NullFamily:
    __slots__ = ()

    def labels(self, *values: str) -> _NullChild:
        return _NULL_CHILD

    inc = _NullChild.inc
    dec = _NullChild.dec
    set = _NullChild.set
    observe = _NullChild.observe

    def samples(self) -> Tuple[Sample, ...]:
        return ()


_NULL_FAMILY = _NullFamily()


class NullRegistry:
    """The disabled registry: same shape, no work, no storage."""

    enabled = False

    def counter(self, name: str, help: str = "", labelnames=()) -> _NullFamily:
        return _NULL_FAMILY

    gauge = counter

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=()
    ) -> _NullFamily:
        return _NULL_FAMILY

    def register_collector(self, collector: Collector) -> None: ...

    def collect(self) -> Tuple[Sample, ...]:
        return ()

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: Process-wide disabled registry (the default wiring everywhere).
NULL_REGISTRY = NullRegistry()
