"""Unified observability: metrics registry, causal tracing, exporters.

One :class:`Observability` object per deployment bundles a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.SpanRecorder`.  It is threaded through the
Session into the server (or cluster), every application instance, and
the transports' stats objects, so a single call captures the whole
deployment:

>>> session = Session(observability=True)          # doctest: +SKIP
>>> print(session.metrics_text())                  # doctest: +SKIP

Disabled is the default and costs nothing on the hot path: every
instrumented site holds :data:`NULL_OBS` (``enabled=False`` plus a
no-op registry), so the check is one attribute load.  Enable via
``SessionConfig(observability=True)``, an :class:`ObservabilityConfig`,
or the ``REPRO_OBSERVABILITY=1`` environment variable (which is how CI
runs the whole tier-1 suite instrumented).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from repro.obs.export import (
    render_json,
    render_prometheus,
    render_span_dump,
    spans_to_dicts,
)
from repro.obs.log import get_logger, log_event, setup_logging
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Sample,
    log_buckets,
)
from repro.obs.tracing import Span, SpanRecorder, observe_latencies

__all__ = [
    "Observability",
    "ObservabilityConfig",
    "NULL_OBS",
    "build_observability",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Sample",
    "Span",
    "SpanRecorder",
    "DEFAULT_LATENCY_BUCKETS",
    "log_buckets",
    "observe_latencies",
    "render_json",
    "render_prometheus",
    "render_span_dump",
    "spans_to_dicts",
    "get_logger",
    "log_event",
    "setup_logging",
]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Knobs for an enabled observability layer."""

    #: Record metrics into a live registry.
    metrics: bool = True
    #: Stamp trace context into messages and record spans.
    tracing: bool = True
    #: Ring-buffer capacity of the span recorder.
    span_maxlen: int = 4096


class Observability:
    """A deployment's registry + span recorder (or the disabled stand-in)."""

    def __init__(
        self, config: Optional[ObservabilityConfig] = None, *, enabled: bool = True
    ):
        self.config = config if config is not None else ObservabilityConfig()
        self.enabled = enabled
        if enabled and self.config.metrics:
            self.registry: Union[MetricsRegistry, NullRegistry] = (
                MetricsRegistry()
            )
        else:
            self.registry = NULL_REGISTRY
        self.tracing = enabled and self.config.tracing
        self.spans = SpanRecorder(maxlen=self.config.span_maxlen)
        self._refreshers: List[Callable[[], None]] = []
        self._latency_seen: set = set()

    # ------------------------------------------------------------------
    # Remote sources
    # ------------------------------------------------------------------

    def add_refresher(self, refresher: Callable[[], None]) -> None:
        """Register a pre-export hook that pulls in remote telemetry.

        The multi-process cluster uses this: before every export the
        supervisor scrapes its workers (delta pulls over the admin link)
        so ``metrics_text()``/``span_dump()`` cover the whole fleet.
        Refreshers run off the message hot path, only at export time.
        """
        self._refreshers.append(refresher)

    def refresh(self) -> None:
        """Run registered refreshers; errors are swallowed (a dead worker
        must not break a scrape — its last cached samples still render).
        Newly finished spans (local and freshly ingested remote ones)
        fold into the latency histograms, incrementally."""
        for refresher in self._refreshers:
            try:
                refresher()
            except Exception:
                pass
        if self.tracing and self.registry.enabled:
            self.observe_span_latencies()

    # ------------------------------------------------------------------
    # Export façade
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus text exposition of every registered metric."""
        self.refresh()
        return render_prometheus(self.registry.collect())

    def metrics_json(self, *, include_spans: bool = False) -> str:
        self.refresh()
        return render_json(
            self.registry.collect(),
            self.spans if include_spans else None,
        )

    def span_dump(self) -> str:
        self.refresh()
        return render_span_dump(self.spans)

    def observe_span_latencies(self) -> int:
        """Fold finished span durations into latency histograms.

        Incremental: every span folds exactly once, however often this
        (or any exporting call, which refreshes first) runs.
        """
        if len(self._latency_seen) > 8 * self.config.span_maxlen:
            # Evicted spans can never be re-observed; drop their ids.
            buffered = {span.span_id for span in self.spans}
            self._latency_seen &= buffered
        return observe_latencies(
            self.spans, self.registry, seen=self._latency_seen
        )

    def __repr__(self) -> str:
        return (
            f"Observability(enabled={self.enabled}, "
            f"tracing={self.tracing}, spans={len(self.spans)})"
        )


#: The process-wide disabled instance — default wiring everywhere.
NULL_OBS = Observability(enabled=False)


def build_observability(
    value: Union[None, bool, ObservabilityConfig, Observability],
) -> Observability:
    """Resolve a ``SessionConfig.observability`` value to an instance.

    ``None``/``False`` → :data:`NULL_OBS`; ``True`` → a fresh enabled
    instance with defaults; a config → an enabled instance with those
    knobs; an :class:`Observability` passes through (letting several
    Sessions share one registry).
    """
    if value is None or value is False:
        return NULL_OBS
    if value is True:
        return Observability()
    if isinstance(value, ObservabilityConfig):
        return Observability(value)
    if isinstance(value, Observability):
        return value
    raise TypeError(
        "observability must be None, a bool, an ObservabilityConfig "
        f"or an Observability, not {type(value).__name__}"
    )
