"""Structured logging for the runtime subsystems.

Every subsystem logs under the ``repro.`` namespace (``repro.net.aio``,
``repro.net.tcp``, ``repro.server.runtime`` …) through stdlib
:mod:`logging`, with a :class:`~logging.NullHandler` on the root so a
library user who never configures logging sees nothing — exactly the old
silent behaviour — while an operator who calls :func:`setup_logging` (or
attaches their own handlers) gets key=value structured records for every
previously-silent drop, retry and reconnect.

Use :func:`get_logger` for the logger and :func:`log_event` to emit::

    log = get_logger("net.aio")
    log_event(log, logging.WARNING, "send_queue_overflow",
              client=client_id, dropped=n, policy="drop")

renders as ``event=send_queue_overflow client=i2 dropped=3 policy=drop``.
"""

from __future__ import annotations

import logging
from typing import Any

#: Namespace root for all runtime loggers.
ROOT = "repro"

# A NullHandler on the namespace root keeps the library silent-by-default
# (no "No handlers could be found" warnings, no stderr spam).
logging.getLogger(ROOT).addHandler(logging.NullHandler())


def get_logger(subsystem: str) -> logging.Logger:
    """The logger for *subsystem*, e.g. ``get_logger("net.aio")``."""
    if subsystem.startswith(ROOT + ".") or subsystem == ROOT:
        return logging.getLogger(subsystem)
    return logging.getLogger(f"{ROOT}.{subsystem}")


def format_event(event: str, **fields: Any) -> str:
    """Render one structured record as ``event=... key=value ...``."""
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if " " in text or "=" in text:
            text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: Any
) -> None:
    """Emit a structured record if *level* is enabled for *logger*."""
    if logger.isEnabledFor(level):
        logger.log(level, "%s", format_event(event, **fields))


def setup_logging(
    level: int = logging.INFO, stream=None
) -> logging.Handler:
    """Attach a stream handler to the ``repro`` namespace (for CLIs).

    Returns the handler so callers can remove it again.
    """
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
    )
    root = logging.getLogger(ROOT)
    root.addHandler(handler)
    root.setLevel(level)
    return handler
