"""The unified :class:`Session` facade: one-call wiring of a deployment.

Tests, benchmarks and examples all need the same setup — a central
endpoint (server or sharded cluster), a network, and N application
instances — so this module packages it behind **one** class::

    session = Session()                              # simulated network
    session = Session(backend="tcp")                 # real TCP sockets
    session = Session(backend="aio", shards=4)       # asyncio runtime,
                                                     # 4-shard cluster

Backends
--------
``"memory"``
    Deterministic discrete-event simulation with a latency model — the
    default for tests and benchmarks.  :meth:`Session.pump` delivers all
    in-flight messages; time is simulated.
``"tcp"``
    Real localhost TCP sockets, one thread per connection (the paper's
    implementation shape).
``"aio"``
    The asyncio server runtime (:mod:`repro.server.runtime`): one event
    loop, outbound batching, bounded send queues with backpressure, and
    per-hop retry — see docs/RUNTIME.md.  Session-created instances join
    the runtime's loop through :class:`~repro.net.aio.AioClientTransport`
    (no reader thread per instance); the wire protocol is identical and
    plain TCP clients interoperate.

Every backend accepts ``shards=N`` to swap the single
:class:`~repro.server.server.CosoftServer` for a
:class:`~repro.cluster.ShardedCosoftCluster`; instances are wired
identically either way because the cluster speaks the same protocol on
the same endpoint.

All knobs live on :class:`SessionConfig`; keyword arguments to
:class:`Session` are conveniences that build one::

    session = Session(backend="aio", max_batch=128, backpressure="block")
    session = Session(config=SessionConfig(backend="memory", loss_rate=0.01))

The pre-redesign entry points — ``LocalSession``, ``TcpSession``,
``ClusterSession`` — remain as thin deprecated aliases and will be
removed in a future release.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cluster import ShardedCosoftCluster
from repro.core.compat import CorrespondenceRegistry
from repro.core.instance import ApplicationInstance
from repro.net.aio import BatchConfig
from repro.net.clock import SimClock
from repro.net.codec import default_codec_name, default_wire_batching, get_codec
from repro.net.memory import MemoryNetwork
from repro.net.registry import BACKENDS, get_communicator
from repro.net.tcp import TcpHostTransport
from repro.net.transport import TrafficStats
from repro.obs import (
    Observability,
    ObservabilityConfig,
    build_observability,
)
from repro.persist import PersistenceConfig
from repro.server.permissions import AccessControl
from repro.server.runtime import AsyncServerRuntime
from repro.server.server import SERVER_ID, CosoftServer

#: Either kind of central endpoint a session can front.
ServerLike = Union[CosoftServer, ShardedCosoftCluster]

# ``BACKENDS`` (re-exported from :mod:`repro.net.registry`) is a *live*
# view of the communicator registry: the built-in trio plus anything
# registered via ``register_communicator`` or the ``repro.communicators``
# entry-point group (docs/COMMUNICATORS.md).

#: BatchConfig field names accepted as Session(...) keyword conveniences.
_BATCH_FIELDS = (
    "max_batch",
    "max_delay",
    "max_queue",
    "backpressure",
    "retry_initial",
    "retry_backoff",
    "retry_limit",
    "retry_max_delay",
)


def _default_observability() -> Union[bool, None]:
    """Default for ``SessionConfig.observability``: the environment knob.

    ``REPRO_OBSERVABILITY=1`` enables the full layer for every Session
    built without an explicit setting — how CI runs the whole tier-1
    suite instrumented without touching any test.
    """
    value = os.environ.get("REPRO_OBSERVABILITY", "").strip().lower()
    return value in ("1", "true", "yes", "on") or None


def _default_persistence() -> Union[None, bool, str]:
    """Default for ``SessionConfig.persistence``: the environment knob.

    ``REPRO_PERSISTENCE=1`` journals every Session into an ephemeral
    directory (removed at close) — how CI runs the integration suite as
    a recovery-chaos pass without touching any test.  A path value
    journals into that directory and keeps it.
    """
    value = os.environ.get("REPRO_PERSISTENCE", "").strip()
    if not value or value.lower() in ("0", "false", "no", "off"):
        return None
    if value.lower() in ("1", "true", "yes", "on"):
        return True
    return value


def _resolve_persistence(
    setting: Union[None, bool, str, PersistenceConfig],
) -> Tuple[Optional[PersistenceConfig], Optional[str]]:
    """Normalize the persistence knob to ``(config, ephemeral_dir)``.

    *ephemeral_dir* is a tempdir the session owns and removes at close —
    only created for the bare ``True`` setting, where the caller asked
    for journaling but named no place to keep it.
    """
    if setting is None or setting is False:
        return None, None
    if isinstance(setting, PersistenceConfig):
        return setting, None
    if setting is True:
        ephemeral = tempfile.mkdtemp(prefix="repro-persist-")
        return PersistenceConfig(directory=ephemeral), ephemeral
    return PersistenceConfig(directory=str(setting)), None


@dataclass
class SessionConfig:
    """Everything a :class:`Session` needs to build a deployment."""

    backend: str = "memory"
    #: 0 = single server; N >= 1 = sharded cluster with N shards.
    shards: int = 0
    #: Run each shard as a supervised OS process (docs/CLUSTER.md): the
    #: router spawns one ``repro.cluster.worker`` per shard, each with
    #: its own journal, heartbeat-monitored and restarted-with-recovery
    #: on crash.  Requires ``backend="aio"`` and ``shards >= 1``.  The
    #: journals live under the ``persistence`` directory when one is
    #: named, else in an ephemeral directory removed at close.
    processes: bool = False
    #: Wire codec for every transport of the deployment: ``"json"`` (the
    #: debugging-friendly historical format), ``"binary"`` (struct-packed
    #: envelope, interned names, varint lengths — docs/PROTOCOL.md), any
    #: registered codec name, or a ready :class:`~repro.net.codec.Codec`.
    #: Codecs negotiate per connection, so sessions with different codecs
    #: interoperate.  Defaults honour the ``REPRO_CODEC`` environment
    #: variable.
    codec: object = field(default_factory=default_codec_name)
    #: Batch-envelope wire path (docs/PROTOCOL.md): when true, every
    #: multi-message flush on the socket backends leaves as one batch
    #: envelope instead of concatenated per-message frames, and the
    #: memory backend prices bytes accordingly.  Decoding is always
    #: transparent, so sessions with different settings interoperate.
    #: Defaults honour the ``REPRO_WIRE_BATCHING`` environment variable;
    #: off keeps the wire byte-identical to previous releases.
    wire_batching: bool = field(default_factory=default_wire_batching)

    # Central endpoint ------------------------------------------------
    default_allow: bool = True
    admin_users: Tuple[str, ...] = ()
    ack_release: bool = True
    #: COUPLE_UPDATE delivery: "all" replicates coupling info to every
    #: registered instance (the paper's literal semantics), "group"
    #: scopes it to the affected couple group (docs/PERF.md).
    couple_scope: str = "all"
    #: Incremental CopyTo: send only attributes changed since the last
    #: acknowledged transfer to the same target (docs/PERF.md).
    delta_sync: bool = True
    correspondences: Optional[CorrespondenceRegistry] = None
    vnodes: int = 64
    #: Observability: ``None``/``False`` (disabled, the default), ``True``
    #: (enabled with defaults), an :class:`ObservabilityConfig`, or a
    #: ready :class:`Observability` instance to share across sessions.
    #: Defaults honour the ``REPRO_OBSERVABILITY`` environment variable.
    observability: Union[None, bool, ObservabilityConfig, Observability] = (
        field(default_factory=_default_observability)
    )
    #: Serve this deployment's metrics over HTTP (docs/OBSERVABILITY.md):
    #: ``None`` (off, the default) or a port for a stdlib ``/metrics``
    #: endpoint (``0`` binds an ephemeral port — read it back from
    #: ``session.metrics_address``).  Each scrape re-collects, so on a
    #: multi-process cluster it transparently delta-pulls every worker.
    metrics_port: Optional[int] = None
    #: Event-sourced persistence (docs/PERSISTENCE.md): ``None``/``False``
    #: (off, the default — frames and hot paths stay byte-identical),
    #: ``True`` (journal into an ephemeral directory removed at close), a
    #: directory path, or a ready :class:`~repro.persist.PersistenceConfig`.
    #: Defaults honour the ``REPRO_PERSISTENCE`` environment variable.
    persistence: Union[None, bool, str, PersistenceConfig] = (
        field(default_factory=_default_persistence)
    )
    #: Ring-buffer capacity of each instance's :class:`EventTrace`
    #: (``None`` keeps the class default of 100 000 events).
    trace_maxlen: Optional[int] = None

    # Simulated network model (memory backend) ------------------------
    base_latency: float = 0.001
    per_byte_latency: float = 0.0
    jitter: float = 0.0
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    seed: int = 0
    service_time: float = 0.0

    # Socket backends (tcp, aio) --------------------------------------
    host: str = "127.0.0.1"
    port: int = 0

    # Asyncio runtime (aio backend) -----------------------------------
    batch: BatchConfig = field(default_factory=BatchConfig)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            from repro.errors import UnknownCommunicatorError

            raise UnknownCommunicatorError(self.backend, tuple(BACKENDS))
        if self.shards < 0:
            raise ValueError("shards must be >= 0")
        if self.processes:
            if self.backend != "aio":
                raise ValueError(
                    'processes=True requires backend="aio" '
                    "(shard workers attach over the asyncio transport)"
                )
            if self.shards < 1:
                raise ValueError("processes=True requires shards >= 1")
        get_codec(self.codec)  # fail fast on an unknown codec name


def _observability_enabled(
    value: Union[None, bool, ObservabilityConfig, Observability],
) -> bool:
    """Whether a ``SessionConfig.observability`` value enables the layer.

    Decided *without* building anything — the multi-process cluster needs
    the answer before it spawns workers (their instrumentation rides in
    the spawn command line), which happens before the session's own
    observability object exists.
    """
    if isinstance(value, Observability):
        return value.enabled
    return bool(value)


def _build_server(
    config: SessionConfig, clock=None
) -> Tuple[ServerLike, Optional[str]]:
    """The central endpoint: one server, or a cluster when ``shards``.

    Returns ``(endpoint, ephemeral_persistence_dir)`` — the directory is
    ``None`` unless the session must clean up a tempdir-backed journal
    at close (the bare ``persistence=True`` setting).
    """
    persist_config, ephemeral = _resolve_persistence(config.persistence)
    if config.processes:
        from repro.cluster.proc import ProcCluster

        # A multi-process cluster always journals (crash recovery needs
        # the per-shard op logs); sessions that named no directory get an
        # ephemeral one, removed at close like any other True setting.
        if persist_config is None or persist_config.directory is None:
            ephemeral = tempfile.mkdtemp(prefix="repro-proc-")
            directory = ephemeral
            snapshot_every = 500
        else:
            directory = persist_config.directory
            snapshot_every = persist_config.snapshot_every
        return (
            ProcCluster(
                config.shards,
                directory=directory,
                link_codec=get_codec(config.codec).name,
                link_wire_batching=config.wire_batching,
                snapshot_every=snapshot_every,
                vnodes=config.vnodes,
                default_allow=config.default_allow,
                admin_users=config.admin_users,
                ack_release=config.ack_release,
                couple_scope=config.couple_scope,
                # Workers spawn before configure_observability runs, so
                # the session's setting must ride in the spawn env/flags.
                observability=_observability_enabled(config.observability),
            ),
            ephemeral,
        )
    if config.shards:
        kwargs = dict(
            vnodes=config.vnodes,
            default_allow=config.default_allow,
            admin_users=config.admin_users,
            ack_release=config.ack_release,
            couple_scope=config.couple_scope,
            persistence=persist_config,
            codec=config.codec,
        )
        if clock is not None:
            kwargs["clock"] = clock
            kwargs["service_time"] = config.service_time
        return ShardedCosoftCluster(config.shards, **kwargs), ephemeral
    kwargs = dict(
        access=AccessControl(default_allow=config.default_allow),
        admin_users=config.admin_users,
        ack_release=config.ack_release,
        couple_scope=config.couple_scope,
        persistence=(
            persist_config.build() if persist_config is not None else None
        ),
    )
    if clock is not None:
        kwargs["clock"] = clock
    return CosoftServer(**kwargs), ephemeral


class _BackendBase:
    """Shared machinery of the session backends."""

    config: SessionConfig
    server: ServerLike
    instances: Dict[str, ApplicationInstance]
    obs: Observability
    #: Tempdir backing an ephemeral journal (``persistence=True``), if any.
    _persist_ephemeral: Optional[str] = None
    #: The HTTP /metrics endpoint (``metrics_port``), if any.
    _metrics_http: Optional[Any] = None

    def _init_observability(
        self, transport_stats: Optional[TrafficStats] = None
    ) -> None:
        """Build the deployment's observability and wire the collectors.

        Called by each backend once the central endpoint is bound.  With
        observability disabled this installs the shared no-op instance
        and registers nothing.
        """
        self.obs = build_observability(self.config.observability)
        if self.obs.enabled:
            self.server.configure_observability(self.obs)
            if self.obs.registry.enabled:
                if transport_stats is not None:
                    transport_stats.register_into(
                        self.obs.registry, transport=self.config.backend
                    )
                from repro.core.compat import (
                    DEFAULT_MAPPING_CACHE,
                    GLOBAL_MATCH_STATS,
                )

                GLOBAL_MATCH_STATS.register_into(self.obs.registry)
                DEFAULT_MAPPING_CACHE.register_into(self.obs.registry)
        if self.config.metrics_port is not None:
            from repro.obs.http import MetricsHTTPServer

            self._metrics_http = MetricsHTTPServer(
                self.obs, self.config.host, self.config.metrics_port
            )

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """Bound ``(host, port)`` of the /metrics endpoint, if serving."""
        server = self._metrics_http
        return server.address if server is not None else None

    @property
    def cluster(self) -> Optional[ShardedCosoftCluster]:
        """The sharded cluster, when this session runs one (else None)."""
        server = self.server
        return server if isinstance(server, ShardedCosoftCluster) else None

    def _persistences(self) -> List[Any]:
        """Every live journal of this deployment (one per shard)."""
        server = self.server
        if isinstance(server, ShardedCosoftCluster):
            found = [shard.persistence for shard in server.shards.values()]
        else:
            found = [getattr(server, "persistence", None)]
        return [p for p in found if p is not None]

    def _close_persistence(self) -> None:
        """Flush and close the journals; drop an ephemeral directory."""
        for persist in self._persistences():
            try:
                persist.close()
            except Exception:
                pass
        if self._persist_ephemeral is not None:
            shutil.rmtree(self._persist_ephemeral, ignore_errors=True)
            self._persist_ephemeral = None

    def drop_instance(self, instance_id: str) -> None:
        """Close and forget one instance."""
        instance = self.instances.pop(instance_id, None)
        if instance is not None:
            instance.close()
            self.pump()

    def close(self) -> None:
        if self._metrics_http is not None:
            try:
                self._metrics_http.close()
            except Exception:
                pass
            self._metrics_http = None
        for instance in list(self.instances.values()):
            try:
                instance.close()
            except Exception:
                pass
        self.instances.clear()

    # Subclass responsibilities ---------------------------------------

    def create_instance(self, instance_id, user, **kwargs) -> ApplicationInstance:
        raise NotImplementedError

    def pump(self) -> int:
        raise NotImplementedError

    def traffic(self) -> Dict[str, object]:
        raise NotImplementedError

    @property
    def now(self) -> float:
        raise NotImplementedError


class _MemoryBackend(_BackendBase):
    """A complete deployment on the simulated network."""

    def __init__(self, config: SessionConfig):
        self.config = config
        self.clock = SimClock()
        self.network = MemoryNetwork(
            self.clock,
            base_latency=config.base_latency,
            per_byte_latency=config.per_byte_latency,
            jitter=config.jitter,
            loss_rate=config.loss_rate,
            duplicate_rate=config.duplicate_rate,
            seed=config.seed,
            codec=config.codec,
            wire_batching=config.wire_batching,
        )
        self.server, self._persist_ephemeral = _build_server(
            config, clock=self.clock
        )
        self.server.bind(self.network.attach(SERVER_ID, self.server.handle_message))
        self.correspondences = config.correspondences
        self.instances: Dict[str, ApplicationInstance] = {}
        self._init_observability(self.network.stats)

    def create_instance(
        self,
        instance_id: str,
        user: str,
        *,
        app_type: str = "",
        register: bool = True,
        lock_timeout: float = 5.0,
        request_timeout: float = 5.0,
        replica_fast_path: bool = True,
        delta_sync: Optional[bool] = None,
    ) -> ApplicationInstance:
        instance = ApplicationInstance(
            instance_id,
            user,
            app_type=app_type,
            correspondences=self.correspondences,
            lock_timeout=lock_timeout,
            request_timeout=request_timeout,
            replica_fast_path=replica_fast_path,
            delta_sync=(
                self.config.delta_sync if delta_sync is None else delta_sync
            ),
            observability=self.obs,
            trace_maxlen=self.config.trace_maxlen,
        ).connect(self.network)
        self.instances[instance_id] = instance
        if register:
            instance.register()
        return instance

    def pump(self) -> int:
        """Deliver all in-flight messages; returns the delivery count."""
        return self.network.pump()

    @property
    def now(self) -> float:
        return self.clock.now()

    def traffic(self) -> Dict[str, object]:
        """Network traffic counters (messages, bytes, per kind/link)."""
        return self.network.stats.snapshot()

    def close(self) -> None:
        super().close()
        self.network.pump()
        self._close_persistence()


class _SocketBackendBase(_BackendBase):
    """Shared machinery of the real-socket backends (tcp, aio)."""

    host: str
    port: int

    def create_instance(
        self,
        instance_id: str,
        user: str,
        *,
        app_type: str = "",
        register: bool = True,
        lock_timeout: float = 5.0,
        request_timeout: float = 5.0,
        replica_fast_path: bool = True,
        delta_sync: Optional[bool] = None,
    ) -> ApplicationInstance:
        instance = self._connect(
            ApplicationInstance(
                instance_id,
                user,
                app_type=app_type,
                correspondences=self.config.correspondences,
                lock_timeout=lock_timeout,
                request_timeout=request_timeout,
                replica_fast_path=replica_fast_path,
                delta_sync=(
                    self.config.delta_sync if delta_sync is None else delta_sync
                ),
                observability=self.obs,
                trace_maxlen=self.config.trace_maxlen,
            )
        )
        self.instances[instance_id] = instance
        if register:
            instance.register()
        return instance

    def _connect(self, instance: ApplicationInstance) -> ApplicationInstance:
        return instance.connect_tcp(
            self.host, self.port, codec=self.config.codec
        )

    def _server_stats(self) -> TrafficStats:
        raise NotImplementedError

    def pump(self, idle: float = 0.02, timeout: float = 2.0) -> int:
        """Settle the deployment: wait until traffic is quiescent.

        Real-socket backends cannot enumerate in-flight messages the way
        the simulator can, so "pump" polls the server transport's
        counters until they have been stable for *idle* seconds (or
        *timeout* elapses).  Returns the number of server-side messages
        that moved while settling.
        """
        stats = self._server_stats()

        def probe() -> Tuple[int, int]:
            return stats.messages, stats.dropped

        start = probe()
        last_change = time.monotonic()
        last = start
        deadline = last_change + timeout
        while time.monotonic() < deadline:
            time.sleep(0.002)
            current = probe()
            if current != last:
                last = current
                last_change = time.monotonic()
            elif time.monotonic() - last_change >= idle:
                break
        return last[0] - start[0]

    @property
    def now(self) -> float:
        return time.monotonic()

    def traffic(self) -> Dict[str, object]:
        """Server-side traffic counters (same fields as the simulator)."""
        return self._server_stats().snapshot()


class _TcpBackend(_SocketBackendBase):
    """A deployment over real localhost TCP sockets (thread per conn)."""

    def __init__(self, config: SessionConfig):
        self.config = config
        self.server, self._persist_ephemeral = _build_server(config)
        self._host_transport = TcpHostTransport(
            self.server.handle_message,
            host=config.host,
            port=config.port,
            codec=config.codec,
            wire_batching=config.wire_batching,
        )
        self.server.bind(self._host_transport)
        self.host, self.port = self._host_transport.address
        self.instances: Dict[str, ApplicationInstance] = {}
        self._init_observability(self._host_transport.stats)

    def _server_stats(self) -> TrafficStats:
        return self._host_transport.stats

    def close(self) -> None:
        super().close()
        self._host_transport.close()
        self._close_persistence()


class _AioBackend(_SocketBackendBase):
    """A deployment under the asyncio server runtime (batching,
    backpressure, per-hop retry — docs/RUNTIME.md)."""

    def __init__(self, config: SessionConfig):
        self.config = config
        self.server, self._persist_ephemeral = _build_server(config)
        self.runtime = AsyncServerRuntime(
            self.server,
            config.host,
            config.port,
            config=config.batch,
            codec=config.codec,
            wire_batching=config.wire_batching,
        )
        self.host, self.port = self.runtime.address
        self.instances: Dict[str, ApplicationInstance] = {}
        self._init_observability(self.runtime.transport.stats)

    def _connect(self, instance: ApplicationInstance) -> ApplicationInstance:
        # Instances join the runtime's own loop: the whole deployment —
        # host plus every client connection — is serviced by one thread
        # instead of a reader thread per endpoint.
        return instance.connect_aio(
            self.host,
            self.port,
            loop=self.runtime.loop,
            codec=self.config.codec,
        )

    def _server_stats(self) -> TrafficStats:
        return self.runtime.transport.stats

    def close(self) -> None:
        super().close()
        self.runtime.close()
        # A multi-process cluster owns worker subprocesses: shut the
        # supervisor down before dropping any ephemeral journal dir.
        shutdown = getattr(self.server, "close", None)
        if shutdown is not None:
            shutdown()
        self._close_persistence()


class Session:
    """A complete COSOFT deployment behind one constructor.

    Example::

        session = Session()                      # simulated, single server
        teacher = session.create_instance("teacher", user="ms-lin")
        student = session.create_instance("student-1", user="kim")
        ...
        session.pump()                           # drain in-flight messages
        session.close()

    Parameters
    ----------
    backend:
        ``"memory"`` (default), ``"tcp"`` or ``"aio"``.
    config:
        A ready-made :class:`SessionConfig`.  Mutually exclusive with the
        keyword conveniences below.
    **knobs:
        Any :class:`SessionConfig` field (``shards``, ``loss_rate``,
        ``ack_release``, …) or :class:`~repro.net.aio.BatchConfig` field
        (``max_batch``, ``backpressure``, …).
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        *,
        config: Optional[SessionConfig] = None,
        **knobs: object,
    ):
        if config is not None:
            if knobs:
                raise TypeError(
                    "pass either a SessionConfig or keyword knobs, not both"
                )
            if backend is not None and backend != config.backend:
                config = replace(config, backend=backend)
        else:
            batch_knobs = {
                key: knobs.pop(key) for key in _BATCH_FIELDS if key in knobs
            }
            if batch_knobs:
                knobs["batch"] = BatchConfig(**batch_knobs)  # type: ignore[arg-type]
            if backend is not None:
                knobs["backend"] = backend
            config = SessionConfig(**knobs)  # type: ignore[arg-type]
        self.config = config
        # Resolve through the communicator registry: third-party backends
        # registered under this name build here without any core edits.
        self._impl: _BackendBase = get_communicator(config.backend)(config)

    # ------------------------------------------------------------------
    # The common facade
    # ------------------------------------------------------------------

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def server(self) -> ServerLike:
        return self._impl.server

    @property
    def cluster(self) -> Optional[ShardedCosoftCluster]:
        """The sharded cluster, when this session runs one (else None)."""
        return self._impl.cluster

    @property
    def instances(self) -> Dict[str, ApplicationInstance]:
        return self._impl.instances

    @property
    def persistence(self):
        """The journal: one object (single server), per-shard dict
        (cluster), or ``None``/empty when persistence is off."""
        server = self._impl.server
        if isinstance(server, ShardedCosoftCluster):
            return {
                shard_id: shard.persistence
                for shard_id, shard in server.shards.items()
                if shard.persistence is not None
            }
        return server.persistence

    @property
    def now(self) -> float:
        """Simulated seconds (memory) or wall-clock seconds (tcp/aio)."""
        return self._impl.now

    def create_instance(
        self, instance_id: str, user: str, **kwargs: object
    ) -> ApplicationInstance:
        """Create, connect and (by default) register an instance."""
        return self._impl.create_instance(instance_id, user, **kwargs)

    def drop_instance(self, instance_id: str) -> None:
        """Close and forget one instance."""
        self._impl.drop_instance(instance_id)

    def pump(self, **kwargs: object) -> int:
        """Drain in-flight messages (memory) / settle traffic (tcp, aio)."""
        return self._impl.pump(**kwargs)

    def traffic(self) -> Dict[str, object]:
        """Traffic counters with the same fields on every backend."""
        return self._impl.traffic()

    # ------------------------------------------------------------------
    # Observability (see docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------

    @property
    def obs(self) -> Observability:
        """This deployment's observability (the no-op one when disabled)."""
        return self._impl.obs

    def metrics_text(self) -> str:
        """Prometheus text exposition of every registered metric."""
        return self._impl.obs.metrics_text()

    def metrics_json(self, *, include_spans: bool = False) -> str:
        """All metrics (and optionally spans) as one JSON document."""
        return self._impl.obs.metrics_json(include_spans=include_spans)

    def span_dump(self) -> str:
        """Human-readable dump of every buffered trace tree."""
        return self._impl.obs.span_dump()

    def trace_stats(self) -> Dict[str, Any]:
        """Occupancy of the bounded trace buffers.

        Per-instance :class:`~repro.toolkit.events.EventTrace` counters
        plus the shared span ring buffer — the operator's check that
        nothing unbounded is growing in a long-running deployment.
        """
        return {
            "instances": {
                instance_id: instance.trace.stats()
                for instance_id, instance in self.instances.items()
            },
            "spans": self._impl.obs.spans.stats(),
        }

    def close(self) -> None:
        self._impl.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Session(backend={self.backend!r}, shards={self.config.shards}, "
            f"instances={len(self.instances)})"
        )

    # Backend-specific attributes (``network``, ``clock``, ``host``,
    # ``port``, ``runtime``, …) fall through to the implementation.
    def __getattr__(self, name: str):
        impl = self.__dict__.get("_impl")
        if impl is None:
            raise AttributeError(name)
        try:
            return getattr(impl, name)
        except AttributeError:
            raise AttributeError(
                f"{type(self).__name__} (backend={self.backend!r}) has no "
                f"attribute {name!r}"
            ) from None


# ---------------------------------------------------------------------------
# Deprecated aliases (pre-redesign entry points)
# ---------------------------------------------------------------------------


def _deprecated(old: str, new: str) -> None:
    # FutureWarning (visible by default, unlike DeprecationWarning): the
    # aliases are in their final release cycle before removal.
    warnings.warn(
        f"{old} is deprecated and will be removed; use {new}",
        FutureWarning,
        stacklevel=3,
    )


class LocalSession(Session):
    """Deprecated alias for ``Session(backend="memory")``."""

    def __init__(self, **kwargs: object):
        _deprecated("LocalSession", 'Session(backend="memory")')
        super().__init__(backend="memory", **kwargs)  # type: ignore[arg-type]


class ClusterSession(Session):
    """Deprecated alias for ``Session(backend="memory", shards=N)``."""

    def __init__(self, shards: int = 2, **kwargs: object):
        _deprecated("ClusterSession", 'Session(backend="memory", shards=N)')
        if shards <= 0:
            raise ValueError("ClusterSession needs at least one shard")
        super().__init__(backend="memory", shards=shards, **kwargs)  # type: ignore[arg-type]


class TcpSession(Session):
    """Deprecated alias for ``Session(backend="tcp")``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, shards: int = 0):
        _deprecated("TcpSession", 'Session(backend="tcp")')
        super().__init__(backend="tcp", host=host, port=port, shards=shards)


#: The supported public surface of this module (README "Public API").
#: The deprecated aliases stay importable until their announced removal
#: but are deliberately not part of it.
__all__ = [
    "BACKENDS",
    "ServerLike",
    "Session",
    "SessionConfig",
]
