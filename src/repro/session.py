"""Session harnesses: one-call wiring of server, network and instances.

Tests, benchmarks and examples all need the same setup — a central server,
a network, and N application instances — so this module packages it:

* :class:`LocalSession` — simulated network (deterministic, latency model);
* :class:`TcpSession` — real TCP sockets on localhost;
* :class:`ClusterSession` — :class:`LocalSession` fronted by a
  :class:`~repro.cluster.ShardedCosoftCluster` instead of a single server.

Both harnesses accept ``shards=N`` to swap the single ``CosoftServer`` for
a sharded cluster; instances are wired identically either way because the
cluster speaks the same protocol on the same endpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.cluster import ShardedCosoftCluster
from repro.core.compat import CorrespondenceRegistry
from repro.core.instance import ApplicationInstance
from repro.net.clock import SimClock
from repro.net.memory import MemoryNetwork
from repro.net.tcp import TcpHostTransport
from repro.server.permissions import AccessControl
from repro.server.server import SERVER_ID, CosoftServer

#: Either kind of central endpoint a session can front.
ServerLike = Union[CosoftServer, ShardedCosoftCluster]


class LocalSession:
    """A complete COSOFT deployment on a simulated network.

    Example::

        session = LocalSession()
        teacher = session.create_instance("teacher", user="ms-lin")
        student = session.create_instance("student-1", user="kim")
        ...
        session.pump()   # drain in-flight messages
    """

    def __init__(
        self,
        *,
        base_latency: float = 0.001,
        per_byte_latency: float = 0.0,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
        default_allow: bool = True,
        admin_users: Tuple[str, ...] = (),
        correspondences: Optional[CorrespondenceRegistry] = None,
        ack_release: bool = True,
        shards: int = 0,
        vnodes: int = 64,
        service_time: float = 0.0,
    ):
        self.clock = SimClock()
        self.network = MemoryNetwork(
            self.clock,
            base_latency=base_latency,
            per_byte_latency=per_byte_latency,
            jitter=jitter,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
            seed=seed,
        )
        self.server: ServerLike = self._build_server(
            shards=shards,
            vnodes=vnodes,
            service_time=service_time,
            default_allow=default_allow,
            admin_users=admin_users,
            ack_release=ack_release,
        )
        self.server.bind(self.network.attach(SERVER_ID, self.server.handle_message))
        self.correspondences = correspondences
        self.instances: Dict[str, ApplicationInstance] = {}

    def _build_server(
        self,
        *,
        shards: int,
        vnodes: int,
        service_time: float,
        default_allow: bool,
        admin_users: Tuple[str, ...],
        ack_release: bool,
    ) -> ServerLike:
        """The central endpoint: one server, or a cluster when ``shards``."""
        if shards:
            return ShardedCosoftCluster(
                shards,
                clock=self.clock,
                vnodes=vnodes,
                service_time=service_time,
                default_allow=default_allow,
                admin_users=admin_users,
                ack_release=ack_release,
            )
        return CosoftServer(
            clock=self.clock,
            access=AccessControl(default_allow=default_allow),
            admin_users=admin_users,
            ack_release=ack_release,
        )

    @property
    def cluster(self) -> Optional[ShardedCosoftCluster]:
        """The sharded cluster, when this session runs one (else None)."""
        server = self.server
        return server if isinstance(server, ShardedCosoftCluster) else None

    def create_instance(
        self,
        instance_id: str,
        user: str,
        *,
        app_type: str = "",
        register: bool = True,
        lock_timeout: float = 5.0,
        replica_fast_path: bool = True,
    ) -> ApplicationInstance:
        """Create, connect and (by default) register an instance."""
        instance = ApplicationInstance(
            instance_id,
            user,
            app_type=app_type,
            correspondences=self.correspondences,
            lock_timeout=lock_timeout,
            replica_fast_path=replica_fast_path,
        ).connect(self.network)
        self.instances[instance_id] = instance
        if register:
            instance.register()
        return instance

    def drop_instance(self, instance_id: str) -> None:
        """Close and forget one instance."""
        instance = self.instances.pop(instance_id, None)
        if instance is not None:
            instance.close()
            self.pump()

    def pump(self) -> int:
        """Deliver all in-flight messages; returns the delivery count."""
        return self.network.pump()

    @property
    def now(self) -> float:
        return self.clock.now()

    def traffic(self) -> Dict[str, object]:
        """Network traffic counters (messages, bytes, per kind/link)."""
        return self.network.stats.snapshot()

    def close(self) -> None:
        for instance in list(self.instances.values()):
            instance.close()
        self.instances.clear()
        self.pump()


class ClusterSession(LocalSession):
    """A :class:`LocalSession` whose central endpoint is a sharded cluster.

    One constructor argument is the whole opt-in::

        session = ClusterSession(shards=4)
        teacher = session.create_instance("teacher", user="ms-lin")

    Everything else — instances, coupling, pumping — works exactly as with
    :class:`LocalSession`, because the cluster router speaks the same
    protocol on the same ``server`` endpoint.
    """

    def __init__(self, shards: int = 2, **kwargs: object):
        if shards <= 0:
            raise ValueError("ClusterSession needs at least one shard")
        super().__init__(shards=shards, **kwargs)  # type: ignore[arg-type]


class TcpSession:
    """A COSOFT deployment over real localhost TCP sockets.

    Pass ``shards=N`` to front the session with a sharded cluster: the TCP
    host transport serializes handler dispatch, so the sans-I/O router
    needs no extra locking.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, shards: int = 0):
        self.server: ServerLike = (
            ShardedCosoftCluster(shards) if shards else CosoftServer()
        )
        self._host_transport = TcpHostTransport(
            self.server.handle_message, host=host, port=port
        )
        self.server.bind(self._host_transport)
        self.host, self.port = self._host_transport.address
        self.instances: List[ApplicationInstance] = []

    @property
    def cluster(self) -> Optional[ShardedCosoftCluster]:
        """The sharded cluster, when this session runs one (else None)."""
        server = self.server
        return server if isinstance(server, ShardedCosoftCluster) else None

    def create_instance(
        self,
        instance_id: str,
        user: str,
        *,
        app_type: str = "",
        register: bool = True,
        request_timeout: float = 5.0,
    ) -> ApplicationInstance:
        instance = ApplicationInstance(
            instance_id,
            user,
            app_type=app_type,
            request_timeout=request_timeout,
        ).connect_tcp(self.host, self.port)
        self.instances.append(instance)
        if register:
            instance.register()
        return instance

    def close(self) -> None:
        for instance in self.instances:
            try:
                instance.close()
            except Exception:
                pass
        self.instances.clear()
        self._host_transport.close()

    def __enter__(self) -> "TcpSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
