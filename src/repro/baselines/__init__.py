"""Architecture baselines (paper §2): multiplex, UI-replicated, and the
fully replicated COSOFT model, all behind one harness interface."""

from repro.baselines.common import ActionRecord, ArchitectureHarness
from repro.baselines.fully_replicated import FullyReplicatedHarness
from repro.baselines.multiplex import MultiplexHarness
from repro.baselines.ui_replicated import UIReplicatedHarness

ALL_ARCHITECTURES = (
    MultiplexHarness,
    UIReplicatedHarness,
    FullyReplicatedHarness,
)

__all__ = [
    "ALL_ARCHITECTURES",
    "ActionRecord",
    "ArchitectureHarness",
    "FullyReplicatedHarness",
    "MultiplexHarness",
    "UIReplicatedHarness",
]
