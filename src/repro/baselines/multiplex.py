"""The multiplex (shared-X) architecture — Figure 1.

"A first type of multi-user systems employs a single-instance architecture
(also called 'multiplex architecture') in which several users interact
simultaneously with a single centralized application instance from several
workstations. ... The shared window system multiplexes the application's
output to each participant's display and dispatches user events
sequentially. ... only the I/O level of the user interface is replicated.
... This architecture does not fit in with the requirements of highly
parallel processing and real-time response." (§2.1)

Model: one central endpoint (``xserver``) owns the only widget tree and all
semantics; each user endpoint is a dumb display holding a state mirror.
A user action is shipped to the center, executed there (including the
semantic cost), and the resulting widget state is multiplexed back to every
display.  Consequently even the issuing user's *echo* takes a full round
trip — the architecture's defining weakness.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.baselines.common import ArchitectureHarness
from repro.net import kinds
from repro.net.message import Message
from repro.toolkit.builder import build
from repro.toolkit.events import Event
from repro.workloads.generator import UserAction

CENTRAL = "xserver"


def _display_id(user: int) -> str:
    return f"display-{user}"


class MultiplexHarness(ArchitectureHarness):
    """One centralized application instance, N multiplexed displays."""

    name = "multiplex"
    central_endpoint = CENTRAL
    features = {
        "replication": "I/O only",
        "local_echo": False,
        "partial_coupling": False,
        "heterogeneous_instances": False,
        "dynamic_grouping": False,
        "single_user_reuse": "unchanged binaries",
    }

    def _setup(self) -> None:
        # The single application instance, living at the central endpoint.
        self.central_tree = build(self.app_spec)
        #: Per-user display mirrors: path -> attribute state.
        self.mirrors: Dict[int, Dict[str, Dict[str, Any]]] = {
            user: {} for user in range(self.n_users)
        }
        self.network.attach(CENTRAL, self._central_handler)
        self._displays = {
            user: self.network.attach(_display_id(user), self._display_handler(user))
            for user in range(self.n_users)
        }

    # ------------------------------------------------------------------
    # Action injection: the display sends the raw input to the center.
    # ------------------------------------------------------------------

    def _perform(self, action: UserAction) -> None:
        params = dict(action.params)
        params["action_id"] = action.action_id
        self._displays[action.user].send(
            Message(
                kind=kinds.COMMAND,
                sender=_display_id(action.user),
                to=CENTRAL,
                payload={
                    "command": "input",
                    "data": {
                        "path": action.path,
                        "event_type": action.event_type,
                        "params": params,
                        "user": action.user,
                        "action_id": action.action_id,
                    },
                },
            )
        )

    # ------------------------------------------------------------------
    # Central application: execute, then multiplex the output.
    # ------------------------------------------------------------------

    def _central_handler(self, message: Message) -> None:
        data = message.payload["data"]
        widget = self.central_tree.find(data["path"])
        event = Event(
            type=data["event_type"],
            source_path=data["path"],
            params=data["params"],
            user=f"user-{data['user']}",
        )
        if self.semantic_cost:
            self.network.occupy(CENTRAL, self.semantic_cost)
        widget.deliver(event)
        update = {
            "command": "output",
            "data": {
                "path": data["path"],
                "state": widget.state(),
                "action_id": data["action_id"],
            },
        }
        for user in range(self.n_users):
            self.network.submit(
                Message(
                    kind=kinds.COMMAND,
                    sender=CENTRAL,
                    to=_display_id(user),
                    payload=update,
                )
            )

    # ------------------------------------------------------------------
    # Displays: apply the multiplexed output.
    # ------------------------------------------------------------------

    def _display_handler(self, user: int):
        def handle(message: Message) -> None:
            data = message.payload["data"]
            self.mirrors[user][data["path"]] = dict(data["state"])
            self._mark_synced(data["action_id"], user)

        return handle

    def user_state(self, user: int, path: str) -> Dict[str, Any]:
        return dict(self.mirrors[user].get(path, {}))
