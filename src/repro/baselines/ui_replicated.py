"""The UI-replicated (partially replicated) architecture — Figure 2.

"In the partially replicated architecture, only the shared user interface
is copied for each participant ... the unique semantic component and the
individual user interfaces run in separate processes.  The Suite system is
a general tool that supports the construction of UI-replicated
applications. ... Concurrency on the user interface level is gained through
buffering and sequential execution of those user actions that affect the
semantics of the application.  If such a semantic action is time-consuming,
it may of course block the execution of other user's actions for an
unacceptably long period of time." (§2.1)

Model: each user endpoint owns a full copy of the *user interface* (so the
echo is immediate and local), while one central ``semantic`` endpoint owns
the application functionality.  Semantic actions queue at the center,
execute serially (modeled via the network's busy-time), and their results
are broadcast back to every UI replica.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.baselines.common import ArchitectureHarness
from repro.net import kinds
from repro.net.message import Message
from repro.toolkit.builder import build
from repro.toolkit.events import Event
from repro.toolkit.widget import UIObject
from repro.workloads.generator import UserAction

CENTRAL = "semantic"


def _ui_id(user: int) -> str:
    return f"ui-{user}"


class UIReplicatedHarness(ArchitectureHarness):
    """Replicated user interfaces around a single semantic process."""

    name = "ui-replicated"
    central_endpoint = CENTRAL
    features = {
        "replication": "user interface",
        "local_echo": True,
        "partial_coupling": "relevant attributes (Suite)",
        "heterogeneous_instances": False,
        "dynamic_grouping": False,
        "single_user_reuse": "restructure around dialogue/semantics split",
    }

    def _setup(self) -> None:
        #: The single semantic component's authoritative tree.
        self.semantic_tree = build(self.app_spec)
        #: Per-user full UI replicas.
        self.ui_trees: Dict[int, UIObject] = {
            user: build(self.app_spec) for user in range(self.n_users)
        }
        self.network.attach(CENTRAL, self._semantic_handler)
        self._uis = {
            user: self.network.attach(_ui_id(user), self._ui_handler(user))
            for user in range(self.n_users)
        }

    # ------------------------------------------------------------------
    # Action injection: local syntactic echo, semantic request queued.
    # ------------------------------------------------------------------

    def _perform(self, action: UserAction) -> None:
        params = dict(action.params)
        params["action_id"] = action.action_id
        event = Event(
            type=action.event_type,
            source_path=action.path,
            params=params,
            user=f"user-{action.user}",
        )
        # Dialogue-level processing is local: immediate feedback.
        widget = self.ui_trees[action.user].find(action.path)
        widget.apply_feedback(event)
        self._mark_synced(action.action_id, action.user)
        # The semantic part is buffered at the central component.
        self._uis[action.user].send(
            Message(
                kind=kinds.COMMAND,
                sender=_ui_id(action.user),
                to=CENTRAL,
                payload={
                    "command": "semantic",
                    "data": {
                        "path": action.path,
                        "event_type": action.event_type,
                        "params": params,
                        "user": action.user,
                        "action_id": action.action_id,
                    },
                },
            )
        )

    # ------------------------------------------------------------------
    # Central semantic component: serial execution, result broadcast.
    # ------------------------------------------------------------------

    def _semantic_handler(self, message: Message) -> None:
        data = message.payload["data"]
        widget = self.semantic_tree.find(data["path"])
        event = Event(
            type=data["event_type"],
            source_path=data["path"],
            params=data["params"],
            user=f"user-{data['user']}",
        )
        if self.semantic_cost:
            # "sequential execution of those user actions that affect the
            # semantics" — the busy period defers every queued request.
            self.network.occupy(CENTRAL, self.semantic_cost)
        widget.deliver(event)
        update = {
            "command": "update",
            "data": {
                "path": data["path"],
                "state": widget.state(),
                "action_id": data["action_id"],
                "origin": data["user"],
            },
        }
        for user in range(self.n_users):
            self.network.submit(
                Message(
                    kind=kinds.COMMAND,
                    sender=CENTRAL,
                    to=_ui_id(user),
                    payload=update,
                )
            )

    # ------------------------------------------------------------------
    # UI replicas: install the semantic results.
    # ------------------------------------------------------------------

    def _ui_handler(self, user: int):
        def handle(message: Message) -> None:
            data = message.payload["data"]
            widget = self.ui_trees[user].find(data["path"])
            widget.set_state(data["state"])
            self._mark_synced(data["action_id"], user)

        return handle

    def user_state(self, user: int, path: str) -> Dict[str, Any]:
        return self.ui_trees[user].find(path).state()
