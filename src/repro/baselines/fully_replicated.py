"""The fully replicated architecture (Figures 3/4) under the harness API.

This is *the library itself* — a :class:`~repro.session.Session` with
one COSOFT application instance per user and the shared widgets coupled —
wrapped into an :class:`~repro.baselines.common.ArchitectureHarness` so
Table 1 and the figure benchmarks can run the same workload against all
three architectures.

"A fully replicated architecture ... avoids this runtime problem [central
semantic blocking], and additionally, it facilitates the design of
multi-user programs." (§2.1)  Here a time-consuming semantic action costs
time on *every replica* (re-execution), but replicas pay it independently —
one user's slow operation never queues behind another group's work.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.baselines.common import ArchitectureHarness
from repro.cluster import ShardedCosoftCluster
from repro.core.instance import ApplicationInstance
from repro.server.permissions import AccessControl
from repro.server.server import SERVER_ID, CosoftServer
from repro.toolkit.builder import build
from repro.toolkit.widget import UIObject
from repro.workloads.generator import UserAction


def _instance_id(user: int) -> str:
    return f"replica-{user}"


class FullyReplicatedHarness(ArchitectureHarness):
    """N complete COSOFT replicas coordinated by the central server."""

    name = "fully-replicated"
    central_endpoint = SERVER_ID
    features = {
        "replication": "user interface + functionality",
        "local_echo": True,
        "partial_coupling": True,
        "heterogeneous_instances": True,
        "dynamic_grouping": True,
        "single_user_reuse": "register with the server (one statement)",
    }

    def __init__(self, n_users: int, *, shards: int = 0, **kwargs: Any):
        # Number of cluster shards fronting the session; 0 keeps the
        # paper's single central server.
        self._shards = shards
        super().__init__(n_users, **kwargs)

    def _setup(self) -> None:
        if self._shards:
            self.server: Any = ShardedCosoftCluster(
                self._shards, clock=self.clock
            )
        else:
            self.server = CosoftServer(clock=self.clock, access=AccessControl())
        self.server.bind(
            self.network.attach(SERVER_ID, self.server.handle_message)
        )
        self.instances: List[ApplicationInstance] = []
        self.trees: Dict[int, UIObject] = {}
        for user in range(self.n_users):
            instance = ApplicationInstance(
                _instance_id(user), user=f"user-{user}"
            ).connect(self.network)
            instance.register()
            tree = build(self.app_spec)
            instance.add_root(tree)
            self.instances.append(instance)
            self.trees[user] = tree
        self.network.pump()
        self._couple_everything()
        self._install_probes()
        self.network.pump()

    def _couple_everything(self) -> None:
        """Couple every leaf widget of replica 0 with its counterparts.

        The transitive closure (§3.2) turns each per-path star into one
        couple group spanning all replicas.
        """
        primary = self.instances[0]
        for widget in self.trees[0].walk():
            if widget.children:
                continue  # events happen on leaves; containers stay local
            for user in range(1, self.n_users):
                primary.couple(
                    widget, (_instance_id(user), widget.pathname)
                )

    def _install_probes(self) -> None:
        """Attach callbacks that (a) model the semantic cost of the
        application's re-executed actions and (b) record sync times."""
        for user, tree in self.trees.items():
            instance_id = _instance_id(user)
            for widget in tree.walk():
                if widget.children:
                    continue
                for event_type in widget.EMITS or ("activate",):
                    widget.add_callback(
                        event_type, self._probe(user, instance_id)
                    )

    def _probe(self, user: int, instance_id: str):
        def on_event(widget: UIObject, event: Any) -> None:
            if self.semantic_cost:
                # Re-execution costs time on this replica only.
                self.network.occupy(instance_id, self.semantic_cost)
            action_id = event.params.get("action_id")
            if action_id is not None:
                self._mark_synced(int(action_id), user)

        return on_event

    # ------------------------------------------------------------------
    # Action injection: a real widget.fire through the coupling runtime.
    # ------------------------------------------------------------------

    def _perform(self, action: UserAction) -> None:
        widget = self.trees[action.user].find(action.path)
        params = dict(action.params)
        params["action_id"] = action.action_id
        record = self.records[action.action_id]
        widget.fire(action.event_type, user=f"user-{action.user}", **params)
        result = self.instances[action.user].last_execution
        if result is not None and result.lock_denied:
            self._mark_denied(action.action_id)
        else:
            # The built-in feedback echoed at issue time, before the floor
            # round trip — the replicated architecture's instant local echo.
            record.t_echo = record.t_issue

    def user_state(self, user: int, path: str) -> Dict[str, Any]:
        return self.trees[user].find(path).state()

    def close(self) -> None:
        for instance in self.instances:
            instance.close()
        self.network.pump()
