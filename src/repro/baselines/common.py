"""Shared harness for comparing multi-user architectures (paper §2).

The paper contrasts three implementation models:

* the **multiplex** architecture (Figure 1) — one central application
  instance, dumb multiplexed displays;
* the **UI-replicated** architecture (Figure 2) — replicated user
  interfaces, one central semantic component (Suite, Rendezvous);
* the **fully replicated** architecture (Figure 3/4) — everything
  replicated, coordinated by the COSOFT server.

Each architecture is a :class:`ArchitectureHarness`: it hosts ``n_users``
participants around a shared widget tree and replays a
:class:`~repro.workloads.generator.UserAction` workload, recording for each
action when the issuing user saw the echo and when every participant was in
sync.  The benchmarks behind Table 1 and Figures 1–3 run identical
workloads through all three harnesses.
"""

from __future__ import annotations

import abc
import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

from repro.net.clock import SimClock
from repro.net.memory import MemoryNetwork
from repro.workloads.generator import UserAction, standard_form_spec


@dataclass
class ActionRecord:
    """Timing of one user action through an architecture."""

    action_id: int
    user: int
    t_issue: float
    t_echo: Optional[float] = None      # issuing user's display updated
    t_all: Optional[float] = None       # every user's display updated
    executed: bool = True               # False if floor control denied it
    synced_users: Set[int] = field(default_factory=set)

    @property
    def echo_latency(self) -> Optional[float]:
        if self.t_echo is None:
            return None
        return self.t_echo - self.t_issue

    @property
    def sync_latency(self) -> Optional[float]:
        if self.t_all is None:
            return None
        return self.t_all - self.t_issue


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


class ArchitectureHarness(abc.ABC):
    """Base class of the three architecture models."""

    #: Architecture name reported in tables.
    name: str = "abstract"
    #: Qualitative feature columns of the paper's comparison table (§2.2).
    features: Mapping[str, object] = {}

    def __init__(
        self,
        n_users: int,
        *,
        app_spec: Optional[Mapping[str, Any]] = None,
        base_latency: float = 0.001,
        semantic_cost: float = 0.0,
        seed: int = 0,
    ):
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        self.n_users = n_users
        self.app_spec = dict(app_spec) if app_spec is not None else standard_form_spec()
        self.semantic_cost = semantic_cost
        self.clock = SimClock()
        self.network = MemoryNetwork(
            self.clock, base_latency=base_latency, seed=seed
        )
        self.records: Dict[int, ActionRecord] = {}
        self._setup()

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _setup(self) -> None:
        """Create endpoints, widget trees and wiring."""

    @abc.abstractmethod
    def _perform(self, action: UserAction) -> None:
        """Inject one user action into the architecture."""

    @abc.abstractmethod
    def user_state(self, user: int, path: str) -> Dict[str, Any]:
        """The attribute state of *path* as seen by *user* (for
        convergence assertions in tests)."""

    # ------------------------------------------------------------------
    # Workload driving
    # ------------------------------------------------------------------

    def run(self, actions: Sequence[UserAction]) -> List[ActionRecord]:
        """Replay a workload; returns the per-action timing records."""
        for action in sorted(actions, key=lambda a: (a.at, a.action_id)):
            self.network.pump_until_time(action.at)
            record = ActionRecord(
                action_id=action.action_id,
                user=action.user,
                t_issue=self.clock.now(),
            )
            self.records[action.action_id] = record
            self._perform(action)
        self.network.pump()
        return [self.records[k] for k in sorted(self.records)]

    # ------------------------------------------------------------------
    # Timing capture helpers (called by subclasses)
    # ------------------------------------------------------------------

    def _mark_synced(self, action_id: int, user: int) -> None:
        record = self.records.get(action_id)
        if record is None:
            return
        now = self.clock.now()
        record.synced_users.add(user)
        if user == record.user and record.t_echo is None:
            record.t_echo = now
        if len(record.synced_users) >= self.n_users and record.t_all is None:
            record.t_all = now

    def _mark_denied(self, action_id: int) -> None:
        record = self.records.get(action_id)
        if record is not None:
            record.executed = False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """Quantitative summary: the numeric columns of Table 1."""
        executed = [r for r in self.records.values() if r.executed]
        denied = [r for r in self.records.values() if not r.executed]
        echo = [r.echo_latency for r in executed if r.echo_latency is not None]
        sync = [r.sync_latency for r in executed if r.sync_latency is not None]
        snapshot = self.network.stats.snapshot()
        central_in = sum(
            count
            for (sender, receiver), count in self.network.stats.by_link.items()
            if receiver == self.central_endpoint
        )
        return {
            "architecture": self.name,
            "users": self.n_users,
            "actions": len(self.records),
            "executed": len(executed),
            "denied": len(denied),
            "echo_latency_mean": statistics.fmean(echo) if echo else float("nan"),
            "echo_latency_p95": _percentile(echo, 0.95),
            "sync_latency_mean": statistics.fmean(sync) if sync else float("nan"),
            "sync_latency_p95": _percentile(sync, 0.95),
            "messages_total": snapshot["messages"],
            "bytes_total": snapshot["bytes"],
            "messages_per_action": (
                snapshot["messages"] / len(self.records) if self.records else 0.0
            ),
            "central_inbound_messages": central_in,
            "duration": self.clock.now(),
        }

    #: Endpoint id of the centralized component (for load accounting).
    central_endpoint: str = "server"

    def close(self) -> None:
        """Release resources (overridden where needed)."""
