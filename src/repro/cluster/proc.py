"""Multi-process cluster: shards as supervised OS processes.

:class:`ProcCluster` is a :class:`~repro.cluster.router.ShardedCosoftCluster`
whose shards are not in-process ``CosoftServer`` objects but **subprocess
handles** — each shard runs ``python -m repro.cluster.worker`` in its own
process, hosting the server behind an
:class:`~repro.server.runtime.AsyncServerRuntime` with its own journal,
and the router talks to it over an ordinary aio link (binary codec and
wire batching apply to the shard hop like any other connection).

Threading model
---------------
The router core (``ShardedCosoftCluster``) is a sans-I/O state machine
that assumes serial dispatch, and its migration protocol
(:meth:`_shard_request`) expects a shard call to complete synchronously.
Both properties are preserved by funneling everything through one
**router thread**:

* ``handle_message`` (called from the host transport's event loop, or
  any client thread) only enqueues; the router thread dequeues and runs
  the normal dispatch, one message at a time.
* :meth:`_call_shard` — the single point where the base router invokes a
  shard — is overridden to wrap the message in a SHARD_FORWARD envelope
  stamped with a per-shard delivery id, send it down the link, and
  **block** until the worker's SHARD_UPLINK acknowledges that id.  The
  collected outputs then flow through the unmodified
  ``_on_shard_send`` bookkeeping.  Serial dispatch means at most one
  delivery is ever outstanding per shard, which is what lets the base
  class's migration/resharding logic run verbatim against processes.
* A **monitor thread** supervises liveness: it polls worker processes,
  sends SHARD_PING probes, and when a worker dies (or goes silent past
  ``liveness_timeout``) restarts it — the replacement recovers from the
  shard's journal, reports its delivery high-water mark in SHARD_HELLO,
  and the supervisor re-sends whatever was still pending, unblocking any
  waiting ``_call_shard`` (see :mod:`repro.cluster.worker` for the
  exactly-once argument).

Link handlers run on each link's private event-loop thread and only
touch the per-shard handle (ack delivery, liveness timestamps, cached
stats) — never the router state.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, FrozenSet, List, Optional

import repro
from repro.errors import ReproError
from repro.net import kinds
from repro.net.aio import AioClientTransport
from repro.net.message import Message
from repro.net.transport import ROUTER_ID, SERVER_ID, TrafficStats
from repro.cluster.router import ShardedCosoftCluster
from repro.obs import tracing as obs_tracing
from repro.obs.remote import ShardSampleCache
from repro.server.routing import RoutingStats

__all__ = ["ProcShardHandle", "ProcCluster", "FlightRecorder"]

#: Sentinel that stops the router thread.
_STOP = object()


class FlightRecorder:
    """Bounded ring of recent supervision events for one shard.

    Cheap enough to run unconditionally (a deque append per lifecycle
    event — spawns, hellos, kills, liveness verdicts); when a worker
    dies the supervisor dumps this ring, the shard's last pulled spans
    and its last known stats to the journal directory, so a post-mortem
    has the seconds *before* the crash, not just the recovery after it.
    """

    def __init__(self, maxlen: int = 256):
        self._events: Deque[Dict[str, Any]] = deque(maxlen=maxlen)

    def note(self, event: str, **detail: Any) -> None:
        entry: Dict[str, Any] = {
            "ts": time.time(),
            "monotonic": time.monotonic(),
            "event": event,
        }
        if detail:
            entry.update(detail)
        self._events.append(entry)

    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)


class ProcShardHandle:
    """The router's in-process stand-in for one shard worker process.

    Holds the subprocess, the aio link to it, the per-shard delivery-id
    counter (monotonic across worker restarts — the router process
    outlives its workers), and the single-slot pending/ack rendezvous
    the blocking :meth:`ProcCluster._call_shard` waits on.
    """

    #: The base router probes ``shard.persistence`` (epoch stamping,
    #: retirement); a subprocess shard's journal lives in the worker.
    persistence = None

    def __init__(self, shard_id: str, directory: str):
        self.shard_id = shard_id
        self.directory = directory
        self.process: Optional[subprocess.Popen] = None
        self.link: Optional[AioClientTransport] = None
        self.port: Optional[int] = None
        #: ``starting`` -> ``ready`` -> (``down`` | ``retired``).
        self.state = "starting"
        self.restarts = 0
        self.spawned_at = 0.0
        self.last_seen = 0.0
        self.last_pong = 0.0
        #: The worker's ``server.stats()`` from its latest SHARD_PONG.
        self.remote_stats: Dict[str, Any] = {}
        #: The worker's journaled delivery high-water mark (from HELLO).
        self.remote_max_did = 0
        self.hello_event = threading.Event()
        self._did = 0
        self._cond = threading.Condition()
        #: did -> SHARD_FORWARD envelope awaiting its SHARD_UPLINK.
        self.pending: Dict[int, Message] = {}
        self._acked: Dict[int, List[Dict[str, Any]]] = {}
        self._aborted = False
        #: Supervision-event ring + last telemetry, dumped on crash.
        self.flight = FlightRecorder()
        self.flight_dumps = 0
        #: Merged view of the worker's metric samples (OBS pulls).
        self.obs_cache = ShardSampleCache(shard_id)
        #: The worker's span-recorder stats from its latest OBS reply.
        self.remote_trace_stats: Dict[str, Any] = {}
        #: Most recent span dicts pulled from the worker (flight dump).
        self.last_spans: Deque[Dict[str, Any]] = deque(maxlen=512)
        self._obs: Any = None
        self._obs_replies = 0
        self._obs_cond = threading.Condition()

    # -- delivery rendezvous (router thread <-> link thread) -----------

    def next_did(self) -> int:
        self._did += 1
        return self._did

    def call(self, did: int, envelope: Message, timeout: float) -> List[Dict[str, Any]]:
        """Send one delivery and block until the worker acknowledges it.

        The envelope is registered *before* the send, so a worker crash
        between the two is covered: the supervisor's restart path
        re-sends everything still pending.
        """
        with self._cond:
            self.pending[did] = envelope
        self.send(envelope)
        deadline = time.monotonic() + timeout
        with self._cond:
            while did not in self._acked:
                if self._aborted:
                    self.pending.pop(did, None)
                    raise ReproError(
                        f"shard {self.shard_id!r} is shutting down"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.pending.pop(did, None)
                    raise ReproError(
                        f"shard {self.shard_id!r} did not acknowledge "
                        f"delivery {did} within {timeout:.0f}s"
                    )
                self._cond.wait(remaining)
            self.pending.pop(did, None)
            return self._acked.pop(did)

    def deliver(self, did: int, outs: List[Dict[str, Any]]) -> None:
        """Record one SHARD_UPLINK ack (link thread side)."""
        with self._cond:
            if did not in self.pending:
                return  # stale duplicate (e.g. a pre-restart ack)
            self._acked[did] = outs
            self._cond.notify_all()

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def resend_pending(self) -> None:
        """Re-deliver unacknowledged envelopes after a worker restart.

        The fresh worker dedups against its journaled high-water mark:
        already-applied deliveries answer from their stored outputs,
        anything newer executes for the first time.
        """
        with self._cond:
            backlog = sorted(self.pending.items())
        for _did, envelope in backlog:
            self.send(envelope)

    def send(self, message: Message) -> None:
        link = self.link
        if link is None:
            return  # between spawns; resend_pending covers it
        try:
            link.send(message)
        except Exception:
            pass  # link died mid-send; the monitor restarts and re-sends

    # -- observability ---------------------------------------------------

    def heartbeat_age(self, now: Optional[float] = None) -> float:
        """Seconds since this worker was last heard from.

        The baseline is the *later* of the last inbound link message and
        the current process's spawn time: right after a kill→respawn the
        stale pre-crash ``last_seen`` must not be reported as a huge age
        for a worker that is seconds old.
        """
        if now is None:
            now = time.monotonic()
        baseline = max(self.last_seen, self.spawned_at)
        if not baseline:
            return float("inf")
        return max(0.0, now - baseline)

    def configure_observability(self, obs, **labels: str) -> None:
        """Register liveness gauges (called by the router's obs wiring)."""
        if not (obs.enabled and obs.registry.enabled):
            return
        from repro.obs.metrics import Sample

        base = tuple(sorted(labels.items()))

        def collect():
            yield Sample(
                "repro_cluster_shard_up", "gauge",
                "Whether the shard worker process is attached and ready",
                base, 1.0 if self.state == "ready" else 0.0,
            )
            yield Sample(
                "repro_cluster_shard_restarts_total", "counter",
                "Times the supervisor restarted this shard worker",
                base, float(self.restarts),
            )
            yield Sample(
                "repro_cluster_shard_heartbeat_age_seconds", "gauge",
                "Seconds since the shard worker was last heard from",
                base, self.heartbeat_age(),
            )

        obs.registry.register_collector(collect)

    def attach_observability(self, obs) -> None:
        """Wire the cross-process scrape for this shard (idempotent).

        Registers the merged sample cache as a registry collector (every
        cached worker sample re-labeled ``shard=<id>``) and remembers the
        supervisor recorder that pulled spans merge into.
        """
        if self._obs is obs:
            return
        first = self._obs is None
        self._obs = obs
        if first and obs.registry.enabled:
            obs.registry.register_collector(self.obs_cache.collect)

    def obs_pull_message(self) -> Message:
        """A SHARD_OBS_PULL asking for the delta since the last reply."""
        return Message(
            kind=kinds.SHARD_OBS_PULL,
            sender=ROUTER_ID,
            to=self.shard_id,
            payload={"since": self.obs_cache.epoch},
        )

    def pull_obs(self, timeout: float) -> bool:
        """Scrape this worker and block until its reply merged (or timeout).

        Used by the export-time refresher; runs on the exporting caller's
        thread, never the router thread, so scrapes stay off the message
        hot path.
        """
        if self.state != "ready" or self.link is None:
            return False
        with self._obs_cond:
            seen = self._obs_replies
        self.send(self.obs_pull_message())
        deadline = time.monotonic() + timeout
        with self._obs_cond:
            while self._obs_replies == seen:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._obs_cond.wait(remaining)
        return True

    def on_obs_reply(self, payload: Dict[str, Any]) -> None:
        """Merge one SHARD_OBS_REPLY (link thread side)."""
        self.obs_cache.apply(
            str(payload.get("epoch", "")),
            bool(payload.get("full")),
            payload.get("samples") or (),
        )
        spans = payload.get("spans") or ()
        if spans:
            self.last_spans.extend(spans)
            obs = self._obs
            if obs is not None and obs.tracing:
                obs.spans.ingest(list(spans))
        stats = payload.get("trace_stats")
        if isinstance(stats, dict):
            self.remote_trace_stats = stats
        with self._obs_cond:
            self._obs_replies += 1
            self._obs_cond.notify_all()


class ProcCluster(ShardedCosoftCluster):
    """A sharded cluster whose shards are supervised subprocesses.

    Parameters (beyond :class:`ShardedCosoftCluster`)
    -------------------------------------------------
    directory:
        Root directory for per-shard journals, portfiles and worker
        logs.  Required — crash recovery needs a durable op log.
    link_codec / link_wire_batching:
        Wire settings for the router<->worker links (default: the
        negotiated binary codec, no batching).
    heartbeat_interval / liveness_timeout:
        Monitor cadence and the silence threshold past which a worker is
        declared dead and restarted (``0`` disables the silence check).
    start_timeout / call_timeout:
        Bounds on worker startup and on one blocking shard call (the
        latter must cover a crash + restart + replay cycle).
    observability:
        Spawn workers with their own live registry + span recorder
        (SHARD_OBS_PULL answers).  Pass it at construction — workers
        start before :meth:`configure_observability` runs — though a
        later enable still covers every worker spawned afterwards.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        directory: str,
        link_codec: str = "binary",
        link_wire_batching: bool = False,
        heartbeat_interval: float = 0.5,
        liveness_timeout: float = 5.0,
        start_timeout: float = 30.0,
        call_timeout: float = 60.0,
        snapshot_every: int = 500,
        observability: bool = False,
        **kwargs: Any,
    ):
        if kwargs.get("persistence") is not None:
            raise ValueError(
                "ProcCluster journals per worker; pass directory=, "
                "not persistence="
            )
        kwargs.pop("persistence", None)
        self.directory = directory
        self.link_codec = link_codec
        self.link_wire_batching = link_wire_batching
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = liveness_timeout
        self.start_timeout = start_timeout
        self.call_timeout = call_timeout
        self.snapshot_every = snapshot_every
        self.observability = observability
        self._obs: Any = None
        self._supervisor_lock = threading.RLock()
        self._spawn_count = 0
        self._closed = False
        os.makedirs(directory, exist_ok=True)
        super().__init__(shards, codec=link_codec, **kwargs)
        self._queue: "list" = []
        self._queue_cond = threading.Condition()
        self._router_thread = threading.Thread(
            target=self._router_loop, name="proc-cluster-router", daemon=True
        )
        self._router_thread.start()
        self._stop_monitor = threading.Event()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="proc-cluster-monitor", daemon=True
        )
        self._monitor_thread.start()

    # ------------------------------------------------------------------
    # Shard lifecycle (overrides)
    # ------------------------------------------------------------------

    def _create_shard(self, shard_id: str) -> None:
        handle = ProcShardHandle(
            shard_id, os.path.join(self.directory, shard_id)
        )
        if self._obs is not None:
            handle.attach_observability(self._obs)
        self.shards[shard_id] = handle  # type: ignore[assignment]
        self._shard_stats[shard_id] = TrafficStats()
        with self._supervisor_lock:
            self._spawn(handle)

    def _retire_shard(self, shard_id: str) -> None:
        handle = self.shards.pop(shard_id)
        self._shard_stats.pop(shard_id, None)
        with self._supervisor_lock:
            handle.state = "retired"
            handle.abort()
            self._terminate(handle)
        # The journal directory stays — an operator can archive or
        # inspect a retired shard's op log.

    # ------------------------------------------------------------------
    # Observability (overrides)
    # ------------------------------------------------------------------

    def configure_observability(self, obs) -> None:
        """Extend the base wiring with the cross-process scrape plane.

        Each shard handle's merged sample cache becomes a registry
        collector (samples re-labeled ``shard=<id>``), pulled spans merge
        into the supervisor recorder, and an export-time refresher
        scrapes every ready worker so ``metrics_text()``/``span_dump()``
        transparently cover the fleet.  Also arms :attr:`observability`
        so any worker (re)spawned from here on comes up instrumented.
        """
        super().configure_observability(obs)
        if not obs.enabled:
            return
        self.observability = True
        self._obs = obs
        for handle in self.shards.values():
            handle.attach_observability(obs)
        obs.add_refresher(self._refresh_remote_obs)

    def _refresh_remote_obs(self) -> None:
        """Delta-scrape every ready worker (export time, off hot path)."""
        timeout = min(self.call_timeout, 5.0)
        for handle in list(self.shards.values()):
            if handle.state != "ready":
                continue
            try:
                handle.pull_obs(timeout)
            except OSError:
                # A link dying mid-scrape must not cost the other
                # shards their refresh; the monitor owns the restart.
                continue

    # ------------------------------------------------------------------
    # Worker spawning / supervision
    # ------------------------------------------------------------------

    def _spawn(self, handle: ProcShardHandle) -> None:
        """Start (or restart) one worker and attach to it.

        Caller holds the supervisor lock.  On return the worker is
        ready, pending deliveries have been re-sent, and the link is
        live.  Raises :class:`ReproError` if the worker fails to come
        up within ``start_timeout``.
        """
        os.makedirs(handle.directory, exist_ok=True)
        portfile = os.path.join(handle.directory, "port")
        if os.path.exists(portfile):
            os.remove(portfile)
        self._spawn_count += 1
        cmd = [
            sys.executable, "-m", "repro.cluster.worker",
            "--shard-id", handle.shard_id,
            "--dir", handle.directory,
            "--portfile", portfile,
            "--codec", self.link_codec,
            "--admin-users", ",".join(self.admin_users),
            "--history-depth", str(self.history_depth),
            "--floor-lease", str(self.floor_lease),
            "--couple-scope", self.couple_scope,
            "--snapshot-every", str(self.snapshot_every),
            # Disjoint per-spawn msg_id space: ids minted inside this
            # worker can never collide with another worker's (or the
            # router's) correlation ids.
            "--msg-id-base", str(self._spawn_count * 10**12),
        ]
        if self.link_wire_batching:
            cmd.append("--wire-batching")
        if not self.default_allow:
            cmd.append("--no-default-allow")
        if not self.ack_release:
            cmd.append("--no-ack-release")
        if self.observability:
            cmd.append("--observability")
        env = dict(os.environ)
        # The session's observability setting is authoritative for the
        # fleet: workers must not inherit a stray REPRO_OBSERVABILITY
        # from the supervisor's environment when the session disabled it
        # (nor miss it when enabled — respawns included).
        env["REPRO_OBSERVABILITY"] = "1" if self.observability else "0"
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + ((os.pathsep + existing) if existing else "")
        )
        log = open(  # the worker inherits the fd; CI uploads the file
            os.path.join(handle.directory, "worker.log"), "ab"
        )
        try:
            process = subprocess.Popen(
                cmd,
                stdin=subprocess.PIPE,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        finally:
            log.close()
        handle.process = process
        handle.state = "starting"
        handle.spawned_at = time.monotonic()
        handle.flight.note(
            "spawn", pid=process.pid, spawn=self._spawn_count,
            observability=self.observability,
        )
        deadline = time.monotonic() + self.start_timeout
        while not os.path.exists(portfile):
            if process.poll() is not None:
                raise ReproError(
                    f"shard worker {handle.shard_id!r} exited with "
                    f"{process.returncode} before binding (see "
                    f"{handle.directory}/worker.log)"
                )
            if time.monotonic() > deadline:
                process.kill()
                raise ReproError(
                    f"shard worker {handle.shard_id!r} did not bind "
                    f"within {self.start_timeout:.0f}s"
                )
            time.sleep(0.01)
        with open(portfile, "r", encoding="utf-8") as fh:
            handle.port = int(fh.read().strip())
        handle.hello_event.clear()
        handle.link = AioClientTransport(
            ROUTER_ID,
            lambda message, _h=handle: self._on_link_message(_h, message),
            "127.0.0.1",
            handle.port,
            loop=None,
            codec=self.link_codec,
        )
        handle.send(
            Message(
                kind=kinds.SHARD_ATTACH,
                sender=ROUTER_ID,
                to=handle.shard_id,
                payload={},
            )
        )
        if not handle.hello_event.wait(self.start_timeout):
            raise ReproError(
                f"shard worker {handle.shard_id!r} never said hello"
            )
        handle.last_seen = time.monotonic()
        handle.state = "ready"
        handle.flight.note(
            "ready", pid=process.pid, port=handle.port,
            remote_max_did=handle.remote_max_did,
            pending=len(handle.pending),
        )
        handle.resend_pending()

    def _terminate(self, handle: ProcShardHandle) -> None:
        """Tear one worker down (graceful EOF, then SIGTERM, then SIGKILL)."""
        process = handle.process
        if process is not None and process.poll() is None:
            try:
                if process.stdin is not None:
                    process.stdin.close()
            except Exception:
                pass
            try:
                process.terminate()
                process.wait(timeout=2.0)
            except Exception:
                try:
                    process.kill()
                    process.wait(timeout=2.0)
                except Exception:
                    pass
        if handle.link is not None:
            try:
                handle.link.close()
            except Exception:
                pass
            handle.link = None

    def _restart(self, handle: ProcShardHandle) -> None:
        """Replace a dead worker; caller holds the supervisor lock."""
        if handle.link is not None:
            try:
                handle.link.close()
            except Exception:
                pass
            handle.link = None
        handle.restarts += 1
        handle.flight.note("restart", restarts=handle.restarts)
        try:
            self._spawn(handle)
        except ReproError:
            handle.state = "down"  # next monitor tick tries again
            handle.flight.note("respawn_failed", restarts=handle.restarts)

    def _dump_flight(self, handle: ProcShardHandle, reason: str) -> str:
        """Write the shard's flight-recorder ring to its journal dir.

        Called when the monitor declares a worker dead — *before* the
        restart, so the dump captures the pre-crash view: supervision
        events, the last spans pulled from the worker, its last stats,
        and the deliveries that were still in flight.  The chaos CI job
        uploads these files as artifacts.
        """
        handle.flight_dumps += 1
        process = handle.process
        dump = {
            "shard": handle.shard_id,
            "reason": reason,
            "wall_time": time.time(),
            "state": handle.state,
            "restarts": handle.restarts,
            "pid": process.pid if process is not None else None,
            "returncode": process.returncode if process is not None else None,
            "heartbeat_age_seconds": handle.heartbeat_age(),
            "pending_deliveries": sorted(handle.pending),
            "remote_max_did": handle.remote_max_did,
            "remote_stats": dict(handle.remote_stats),
            "remote_trace_stats": dict(handle.remote_trace_stats),
            "events": handle.flight.events(),
            "spans": list(handle.last_spans),
        }
        path = os.path.join(
            handle.directory, f"flight-{handle.flight_dumps}.json"
        )
        try:
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(dump, fh, indent=2, default=str)
            os.replace(tmp, path)
        except OSError:
            return ""  # a full disk must not take the supervisor down
        return path

    def _monitor_loop(self) -> None:
        ping = None
        while not self._stop_monitor.wait(self.heartbeat_interval):
            for handle in list(self.shards.values()):
                if self._closed:
                    return
                if handle.state == "retired":
                    continue
                with self._supervisor_lock:
                    if self._closed or handle.state == "retired":
                        continue
                    process = handle.process
                    dead = process is None or process.poll() is not None
                    silent = (
                        not dead
                        and handle.state == "ready"
                        and self.liveness_timeout > 0
                        and time.monotonic() - handle.last_seen
                        > self.liveness_timeout
                    )
                    if silent:
                        # Alive but unresponsive: treat like a crash.
                        handle.flight.note(
                            "liveness_timeout",
                            age=time.monotonic() - handle.last_seen,
                        )
                        try:
                            process.kill()
                            process.wait(timeout=2.0)
                        except Exception:
                            pass
                        dead = True
                    if dead:
                        handle.flight.note(
                            "dead",
                            returncode=(
                                process.returncode
                                if process is not None else None
                            ),
                        )
                        self._dump_flight(
                            handle,
                            "liveness_timeout" if silent else "worker_exit",
                        )
                        self._restart(handle)
                        continue
                if handle.state == "ready":
                    ping = Message(
                        kind=kinds.SHARD_PING,
                        sender=ROUTER_ID,
                        to=handle.shard_id,
                        payload={},
                    )
                    handle.send(ping)
                    if self.observability and handle._obs is not None:
                        # Piggyback a delta scrape on the heartbeat so
                        # the supervisor's span/sample view (and thus a
                        # crash dump) is never staler than one tick.
                        handle.send(handle.obs_pull_message())

    def _on_link_message(self, handle: ProcShardHandle, message: Message) -> None:
        """Inbound from one worker (runs on that link's loop thread)."""
        handle.last_seen = time.monotonic()
        kind = message.kind
        payload = message.payload
        if kind == kinds.SHARD_UPLINK:
            handle.deliver(
                int(payload["did"]), list(payload.get("outs") or ())
            )
        elif kind == kinds.SHARD_HELLO:
            handle.remote_max_did = int(payload.get("max_did", 0))
            handle.hello_event.set()
        elif kind == kinds.SHARD_PONG:
            handle.last_pong = time.monotonic()
            handle.remote_max_did = int(
                payload.get("max_did", handle.remote_max_did)
            )
            stats = payload.get("stats")
            if isinstance(stats, dict):
                handle.remote_stats = stats
        elif kind == kinds.SHARD_OBS_REPLY:
            handle.on_obs_reply(payload)

    # ------------------------------------------------------------------
    # Router thread (serial dispatch)
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Enqueue for the router thread (callable from any thread)."""
        with self._queue_cond:
            self._queue.append(message)
            self._queue_cond.notify()

    def _router_loop(self) -> None:
        while True:
            with self._queue_cond:
                while not self._queue:
                    self._queue_cond.wait()
                item = self._queue.pop(0)
            if item is _STOP:
                return
            if isinstance(item, Message):
                try:
                    ShardedCosoftCluster.handle_message(self, item)
                except Exception:
                    pass  # dispatch already error-replies; never die
            else:
                fn, box, event = item
                try:
                    box["result"] = fn()
                except BaseException as exc:  # marshal to the caller
                    box["error"] = exc
                finally:
                    event.set()

    def _on_router_thread(self, fn):
        """Run *fn* on the router thread and return its result."""
        if threading.current_thread() is self._router_thread:
            return fn()
        box: Dict[str, Any] = {}
        event = threading.Event()
        with self._queue_cond:
            self._queue.append((fn, box, event))
            self._queue_cond.notify()
        if not event.wait(self.call_timeout + self.start_timeout):
            raise ReproError("cluster router thread is unresponsive")
        if "error" in box:
            raise box["error"]
        return box.get("result")

    # ------------------------------------------------------------------
    # Shard invocation (override)
    # ------------------------------------------------------------------

    def _call_shard(
        self,
        shard_id: str,
        message: Message,
        suppress: Optional[FrozenSet[str]] = None,
    ) -> None:
        handle = self.shards[shard_id]
        did = handle.next_did()
        obs = self.obs
        span = None
        if obs.tracing and message.trace is not None:
            # The supervisor half of the cross-process hop: covers the
            # envelope round trip (send .. ack + output replay).  The
            # worker parents its worker.apply span off this id, so the
            # merged trace tree crosses the process boundary intact.
            span = obs.spans.start(
                obs_tracing.CLUSTER_FORWARD,
                trace_id=message.trace[0],
                parent_id=message.trace[1],
                endpoint=ROUTER_ID,
                shard=shard_id,
                did=did,
            )
            message = dataclasses.replace(
                message, trace=(message.trace[0], span.span_id)
            )
        envelope = Message(
            kind=kinds.SHARD_FORWARD,
            sender=ROUTER_ID,
            to=shard_id,
            payload={
                "did": did,
                "msg": message.to_wire(),
                "suppress": sorted(suppress) if suppress else [],
            },
        )
        try:
            outs = handle.call(did, envelope, self.call_timeout)
            # The worker already applied the suppress filter; replay its
            # outputs through the base bookkeeping unfiltered.
            for wire in outs:
                self._on_shard_send(shard_id, Message.from_wire(wire))
        finally:
            if span is not None:
                obs.spans.finish(span)

    # ------------------------------------------------------------------
    # Resharding / administration entry points (marshal to router thread)
    # ------------------------------------------------------------------

    def add_shard(self, shard_id: Optional[str] = None) -> str:
        return self._on_router_thread(
            lambda: ShardedCosoftCluster.add_shard(self, shard_id)
        )

    def remove_shard(self, shard_id: str):
        return self._on_router_thread(
            lambda: ShardedCosoftCluster.remove_shard(self, shard_id)
        )

    def kill_shard(self, shard_id: str) -> int:
        """SIGKILL one worker (chaos/testing); the monitor restarts it."""
        handle = self.shards[shard_id]
        process = handle.process
        if process is None:
            raise ReproError(f"shard {shard_id!r} has no process")
        pid = process.pid
        handle.flight.note("kill_shard", pid=pid)
        process.kill()
        return pid

    def _on_cluster_reshard(self, message: Message) -> None:
        if message.payload.get("action") == "kill":
            shard_id = str(message.payload.get("shard", ""))
            if shard_id not in self.shards:
                raise ValueError(f"unknown shard {shard_id!r}")
            pid = self.kill_shard(shard_id)
            self._emit(
                message.reply(
                    kinds.CLUSTER_RESHARD_REPLY,
                    SERVER_ID,
                    action="kill",
                    shard=shard_id,
                    pid=pid,
                    shards=list(self.shard_ids),
                    moved=[],
                )
            )
            return
        super()._on_cluster_reshard(message)

    # ------------------------------------------------------------------
    # Introspection (overrides: shard internals live in the workers)
    # ------------------------------------------------------------------

    def cluster_status(self) -> Dict[str, Any]:
        status = super().cluster_status()
        status["processes"] = {
            shard_id: {
                "pid": handle.process.pid if handle.process else None,
                "state": handle.state,
                "restarts": handle.restarts,
                "port": handle.port,
            }
            for shard_id, handle in self.shards.items()
        }
        return status

    def stats(self) -> Dict[str, Any]:
        per_shard = {
            shard_id: {
                "messages": self._shard_stats[shard_id].messages,
                "state": handle.state,
                "pid": handle.process.pid if handle.process else None,
                "restarts": handle.restarts,
                "worker": dict(handle.remote_stats),
            }
            for shard_id, handle in self.shards.items()
        }
        routing = RoutingStats()
        routing.merge(self.routing)
        return {
            "shards": len(self.shards),
            "migrations": self.migrations,
            "registered": len(self.registry),
            "couple_links": len(self.mirror),
            "couple_groups": len(self.mirror.groups()),
            "homes": len(self._home),
            "processed": dict(self.processed),
            "routing": routing.snapshot(),
            "per_shard": per_shard,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop_monitor.set()
        with self._queue_cond:
            self._queue.append(_STOP)
            self._queue_cond.notify()
        for handle in list(self.shards.values()):
            handle.abort()
        self._monitor_thread.join(timeout=5.0)
        self._router_thread.join(timeout=5.0)
        with self._supervisor_lock:
            for handle in list(self.shards.values()):
                self._terminate(handle)

    def __enter__(self) -> "ProcCluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
