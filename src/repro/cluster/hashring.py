"""Consistent hashing: couple-group ids -> shard ids.

The cluster router partitions couple groups across shards.  A plain
``hash(key) % n`` would remap almost every key when a shard is added or
removed; a consistent-hash ring with virtual nodes remaps only the keys
that land on the changed shard's arcs — on average ``1/(n+1)`` of them —
while the virtual nodes keep the load within a small factor of uniform.

The hash is BLAKE2b (stable across processes and Python versions, unlike
the builtin ``hash``), so a key's owner is a pure function of the shard
set — any router replica computes the same placement.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Dict, Iterable, List, Tuple


def _position(key: str) -> int:
    """A stable 64-bit ring position for *key*."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring mapping string keys to node (shard) ids.

    Parameters
    ----------
    nodes:
        Initial node ids.
    vnodes:
        Virtual nodes per physical node.  More virtual nodes flatten the
        load distribution (the per-shard share concentrates around
        ``1/n``) at the cost of a larger ring.
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64):
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self._vnodes = vnodes
        #: Sorted ``(position, node)`` pairs — the ring.
        self._ring: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Insert *node* at its ``vnodes`` ring positions."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for replica in range(self._vnodes):
            bisect.insort(self._ring, (_position(f"{node}#{replica}"), node))

    def remove_node(self, node: str) -> None:
        """Remove *node*; its keys fall to their ring successors."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]

    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The node owning *key*: the first vnode clockwise of its hash."""
        if not self._ring:
            raise ValueError("hash ring has no nodes")
        position = _position(key)
        index = bisect.bisect_right(self._ring, (position, "￿"))
        if index == len(self._ring):
            index = 0  # wrap around the ring
        return self._ring[index][1]

    def distribution(self, keys: Iterable[str]) -> Dict[str, int]:
        """Key count per node — diagnostics for balance checks."""
        counts: Counter = Counter({node: 0 for node in self._nodes})
        for key in keys:
            counts[self.node_for(key)] += 1
        return dict(counts)
