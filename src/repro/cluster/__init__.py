"""Sharded COSOFT deployments: consistent hashing, routing, migration.

The paper's single central server (§2.1) ties the whole session to one
process.  This package scales it out while keeping every client-visible
guarantee: a :class:`ShardedCosoftCluster` front-end speaks the exact
``CosoftServer`` contract, partitions couple groups across embedded server
shards with a :class:`HashRing`, and migrates a group between shards when
a new couple link merges groups homed apart.  See docs/CLUSTER.md.
"""

from repro.cluster.hashring import HashRing
from repro.cluster.router import ShardedCosoftCluster

__all__ = ["HashRing", "ShardedCosoftCluster"]
