"""The sharded COSOFT cluster: a router in front of N server shards.

The paper's architecture (Figure 4) funnels every couple, lock and event
through one central server.  Floor control and event serialization are
scoped *per couple group* (the transitive closure ``CO(o)``, §3.2), so
groups shard cleanly: each group lives on exactly one
:class:`~repro.server.server.CosoftServer` shard and the hot path (lock →
event → acks) never crosses shards.

:class:`ShardedCosoftCluster` is itself a **sans-I/O state machine** with
the same ``handle_message`` contract as ``CosoftServer`` — bind it to a
:class:`~repro.net.memory.MemoryNetwork` endpoint or a
:class:`~repro.net.tcp.TcpHostTransport` and clients cannot tell it from a
single server.  Internally it:

* forwards registration and permission rules to **all** shards (every
  shard needs the roster and ACLs), answering the client itself so the
  shards' duplicate replies never leave the cluster;
* routes group-scoped traffic (COUPLE/LOCK/EVENT/state sync/history/
  ``CoSendCommand``) to the owning shard — a sticky home assignment
  seeded by a consistent-hash ring (:class:`~repro.cluster.hashring.HashRing`);
* **migrates** a couple group between shards when a new couple link
  merges two groups homed on different shards: the smaller group is
  frozen (its traffic buffered), its couple rows, lock entries, floors
  and historical states are transferred with the MIGRATE_* messages
  (docs/CLUSTER.md), and the buffer is replayed on the new home.

The router keeps a mirror of the cluster-wide couple table, maintained
from the shards' own COUPLE_UPDATE broadcasts (exactly like a client
replica), so it can compute transitive closures without asking a shard.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core import coupling
from repro.errors import AlreadyRegisteredError, ReproError
from repro.net import kinds
from repro.net.clock import Clock, SimClock
from repro.net.codec import Codec, get_codec
from repro.net.message import Message
from repro.net.transport import (
    ROUTER_ID,
    SERVER_ID,
    TrafficStats,
    Transport,
    resolve_destination,
)
from repro.cluster.hashring import HashRing
from repro.obs import NULL_OBS
from repro.obs import tracing as obs_tracing
from repro.server.couples import CoupleTable, GlobalId, gid_from_wire, gid_to_wire
from repro.server.permissions import AccessControl
from repro.server.registry import RegistrationRecord, Registry
from repro.server.routing import RoutingStats, broadcast, validate_couple_scope
from repro.server.server import CosoftServer


class _ShardTransport(Transport):
    """A shard's outbound handle: hands every send back to the router.

    Owns the shard's :class:`TrafficStats`, so the cluster path reports
    per-hop traffic through the same object a single server does.
    """

    def __init__(self, cluster: "ShardedCosoftCluster", shard_id: str):
        self._cluster = cluster
        self._shard_id = shard_id
        self._closed = False
        self._stats = TrafficStats()

    @property
    def local_id(self) -> str:
        return SERVER_ID

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    def send(self, message: Message) -> None:
        self._cluster._on_shard_send(self._shard_id, message)

    def recv(self, message: Message) -> None:
        self._cluster.shards[self._shard_id].handle_message(message)

    def drive(self, predicate, timeout: float = 5.0) -> bool:
        # Shards are passive state machines; they never block on replies.
        return bool(predicate())

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


#: Shard replies the router suppresses because it answers the client itself.
_REGISTER_SUPPRESS = frozenset({kinds.REGISTER_ACK, kinds.INSTANCE_LIST})
_UNREGISTER_SUPPRESS = frozenset({kinds.INSTANCE_LIST})
_SECONDARY_SUPPRESS = frozenset({kinds.PERMISSION_REPLY, kinds.ERROR})


class ShardedCosoftCluster:
    """A drop-in ``CosoftServer`` replacement that shards by couple group.

    Parameters
    ----------
    shards:
        Number of server shards.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring.
    service_time:
        Optional modeled per-message processing cost (simulated seconds)
        each shard pays serially.  With it the cluster tracks per-shard
        busy periods so benchmarks can report the makespan a parallel
        deployment would achieve (see :meth:`modeled_makespan`).
    default_allow / admin_users / ack_release / history_depth / floor_lease:
        Forwarded to every shard, mirroring ``CosoftServer``.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        clock: Optional[Clock] = None,
        vnodes: int = 64,
        service_time: float = 0.0,
        default_allow: bool = True,
        admin_users: Tuple[str, ...] = (),
        ack_release: bool = True,
        history_depth: int = 100,
        floor_lease: float = 30.0,
        couple_scope: str = "all",
        persistence: Optional[Any] = None,
        codec: object = "json",
        placement: str = "hash",
    ):
        if shards <= 0:
            raise ValueError("a cluster needs at least one shard")
        if placement not in ("hash", "load"):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.clock: Clock = clock if clock is not None else SimClock()
        #: The codec the router accounts inter-shard bytes with (the
        #: router↔shard hop is in-process, so the codec only prices it).
        self.codec: Codec = get_codec(codec)
        #: COUPLE_UPDATE delivery policy, enforced inside each shard (the
        #: router's own broadcasts — INSTANCE_LIST — stay population-wide).
        self.couple_scope = validate_couple_scope(couple_scope)
        #: Router-level delivery decisions (shards keep their own).
        self.routing = RoutingStats()
        self.shard_ids: Tuple[str, ...] = tuple(
            f"shard-{i}" for i in range(shards)
        )
        #: Placement policy for resharding targets and merge winners:
        #: ``"hash"`` follows the ring, ``"load"`` prefers the shard with
        #: the lower observed message load (docs/CLUSTER.md).
        self.placement = placement
        self.vnodes = vnodes
        self.default_allow = default_allow
        self.admin_users = tuple(admin_users)
        self.ack_release = ack_release
        self.history_depth = history_depth
        self.floor_lease = floor_lease
        self.ring = HashRing(self.shard_ids, vnodes=vnodes)
        self.shards: Dict[str, CosoftServer] = {}
        #: Per-shard traffic accounting lives on each shard's transport —
        #: the same ``TrafficStats`` object a single server reports — and
        #: is aggregated with :meth:`TrafficStats.merge`.
        self._shard_stats: Dict[str, TrafficStats] = {}
        #: Per-shard journals (docs/PERSISTENCE.md): each shard gets its
        #: own op log + snapshot store under a shard-named subdirectory,
        #: so a group migration's MIGRATE_IMPORT — journaled like any
        #: other state change — ships the group's snapshot through the
        #: target shard's log automatically.
        self.persistence_config = persistence
        #: Router-side replica of the ACL table, maintained from the
        #: PERMISSION_SETs it forwards; ships to freshly added shards
        #: (:meth:`add_shard`) so they enforce the same rules.
        self.acl_mirror = AccessControl(default_allow=default_allow)
        for shard_id in self.shard_ids:
            self._create_shard(shard_id)

        #: Router-owned registration records (shards hold replicas).
        self.registry = Registry()
        #: Mirror of the cluster-wide couple table, fed by the shards'
        #: COUPLE_UPDATE broadcasts (the same mechanism client replicas use).
        self.mirror = CoupleTable()
        #: Sticky home assignment: coupled (or migrated) object -> shard.
        self._home: Dict[GlobalId, str] = {}
        #: (instance, token) -> shard that granted the floor (UNLOCK routing).
        self._lock_routes: Dict[Tuple[str, int], str] = {}
        #: floor owner -> shard that broadcast its event (EVENT_ACK routing).
        self._floor_routes: Dict[Tuple[str, int], str] = {}
        #: floor owner -> outstanding EVENT_ACKs (route-table cleanup).
        self._floor_expected: Dict[Tuple[str, int], int] = {}
        #: forwarded FETCH_STATE msg_id -> (shard, owner instance).
        self._pending_routes: Dict[int, Tuple[str, str]] = {}
        #: Objects mid-migration; messages touching them are buffered.
        self._frozen: set = set()
        self._migration_buffer: List[Message] = []
        #: Replies shards address to the router (migration control).
        self._captured: Dict[int, Message] = {}
        self._suppress: Optional[FrozenSet[str]] = None
        #: Modeled per-shard busy horizon (see ``service_time``).
        self.service_time = service_time
        self._busy_until: Dict[str, float] = {}

        self.processed: Counter = Counter()
        self.migrations = 0
        #: What the most recent :meth:`add_shard`/:meth:`remove_shard`
        #: moved (``{"action", "shard", "moved"}``) — the minimal-remap
        #: audit trail the reshard tests assert against.
        self.last_reshard: Dict[str, Any] = {}
        self._transport: Optional[Transport] = None
        #: Observability hooks (disabled stand-in by default).
        self.obs = NULL_OBS

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------

    def _create_shard(self, shard_id: str) -> None:
        """Build one shard and wire it into the routing tables.

        The override point for deployments that host shards elsewhere —
        the multi-process cluster replaces the in-process server with a
        subprocess handle (:mod:`repro.cluster.proc`).
        """
        shard = CosoftServer(
            clock=self.clock,
            access=AccessControl(default_allow=self.default_allow),
            history_depth=self.history_depth,
            admin_users=self.admin_users,
            floor_lease=self.floor_lease,
            ack_release=self.ack_release,
            couple_scope=self.couple_scope,
            persistence=(
                self.persistence_config.for_shard(shard_id).build()
                if self.persistence_config is not None
                else None
            ),
        )
        transport = _ShardTransport(self, shard_id)
        shard.bind(transport)
        self.shards[shard_id] = shard
        self._shard_stats[shard_id] = transport.stats

    def _retire_shard(self, shard_id: str) -> None:
        """Drop a shard that no longer owns any state (see remove_shard)."""
        shard = self.shards.pop(shard_id)
        self._shard_stats.pop(shard_id, None)
        persist = getattr(shard, "persistence", None)
        if persist is not None:
            persist.close()

    # ------------------------------------------------------------------
    # Wiring (same contract as CosoftServer)
    # ------------------------------------------------------------------

    def bind(self, transport: Transport) -> None:
        """Attach the outward transport the cluster answers clients through."""
        self._transport = transport

    def configure_observability(self, obs) -> None:
        """Enable metrics/tracing on the router and every shard.

        The router's own routing stats and each shard's stats register
        with per-shard labels, so one registry snapshot shows the whole
        cluster broken down by shard.
        """
        self.obs = obs
        if obs.enabled and obs.registry.enabled:
            self.routing.register_into(obs.registry, endpoint="router")
            for shard_id, stats in self._shard_stats.items():
                stats.register_into(obs.registry, shard=shard_id)
        for shard_id, shard in self.shards.items():
            shard.configure_observability(obs, shard=shard_id)

    def _emit(self, message: Message) -> None:
        if self._transport is None:
            raise ReproError("cluster has no transport bound")
        self._transport.send(message)

    def _broadcast(
        self,
        kind: str,
        payload: Mapping[str, Any],
        *,
        exclude: Tuple[str, ...] = (),
        audience: Optional[Iterable[str]] = None,
    ) -> int:
        # Same delivery helper the single server uses — the interest
        # routing policy cannot drift between the two front ends.
        return broadcast(
            self._emit,
            self.registry.instance_ids(),
            kind,
            payload,
            exclude=exclude,
            audience=audience,
            stats=self.routing,
        )

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------

    _MALFORMED = CosoftServer._MALFORMED

    #: Kinds routed to a single shard by group/object/correlation.
    _ROUTED = frozenset(
        {
            kinds.LOCK_REQUEST,
            kinds.UNLOCK,
            kinds.EVENT,
            kinds.EVENT_ACK,
            kinds.FETCH_STATE,
            kinds.STATE_REPLY,
            kinds.PUSH_STATE,
            kinds.REMOTE_COPY,
            kinds.RESYNC_REQUEST,
            kinds.HISTORY_PUSH,
            kinds.UNDO_REQUEST,
            kinds.COMMAND,
            kinds.COMMAND_REPLY,
            kinds.ERROR,
        }
    )

    def handle_message(self, message: Message) -> None:
        """Process one inbound client message (sans-I/O entry point)."""
        self.processed[message.kind] += 1
        self._safe_dispatch(message)

    def _safe_dispatch(self, message: Message) -> None:
        try:
            self._dispatch(message)
        except self._MALFORMED as exc:
            self.processed["__rejected__"] += 1
            try:
                self._emit(
                    message.error_reply(SERVER_ID, f"{type(exc).__name__}: {exc}")
                )
            except ReproError:
                pass  # no transport bound / sender unreachable

    def _dispatch(self, message: Message) -> None:
        if self._frozen and self._touches_frozen(message):
            # The group is mid-migration: hold the message and replay it
            # on the new home once the transfer completes.
            self._migration_buffer.append(message)
            self.processed["__buffered__"] += 1
            return
        kind = message.kind
        if kind == kinds.REGISTER:
            self._on_register(message)
        elif kind == kinds.UNREGISTER:
            self._on_unregister(message)
        elif kind == kinds.PERMISSION_SET:
            self._on_permission_set(message)
        elif kind in (kinds.COUPLE, kinds.REMOTE_COUPLE):
            self._on_couple(message)
        elif kind in (kinds.DECOUPLE, kinds.REMOTE_DECOUPLE):
            self._on_decouple(message)
        elif kind == kinds.CATCHUP_REQUEST:
            self._on_catchup(message)
        elif kind == kinds.CLUSTER_STATUS:
            self._on_cluster_status(message)
        elif kind == kinds.CLUSTER_RESHARD:
            self._on_cluster_reshard(message)
        elif kind in self._ROUTED:
            shard_id = self._route(message)
            if shard_id is not None:
                self._forward(shard_id, message)
        else:
            self._emit(message.error_reply(SERVER_ID, "unsupported message kind"))

    # ------------------------------------------------------------------
    # Registration / permissions: fan out to every shard
    # ------------------------------------------------------------------

    def _on_register(self, message: Message) -> None:
        payload = dict(message.payload)
        if message.sender in self.registry:
            raise AlreadyRegisteredError(
                f"instance {message.sender!r} is already registered"
            )
        record = RegistrationRecord(
            instance_id=message.sender,
            user=str(payload.get("user", "")),
            host=str(payload.get("host", "localhost")),
            app_type=str(payload.get("app_type", "")),
            registered_at=self.clock.now(),
        )
        self.registry.add(record)
        for shard_id in self.shard_ids:
            self._forward(shard_id, message, suppress=_REGISTER_SUPPRESS)
        self._emit(
            message.reply(
                kinds.REGISTER_ACK,
                SERVER_ID,
                roster=self.registry.roster(),
                couples=self.mirror.to_wire(),
                server_time=self.clock.now(),
            )
        )
        self._broadcast(
            kinds.INSTANCE_LIST,
            {"roster": self.registry.roster(), "joined": record.instance_id},
            exclude=(record.instance_id,),
        )

    def _on_unregister(self, message: Message) -> None:
        instance_id = message.sender
        self.registry.get(instance_id)  # NotRegisteredError -> ERROR reply
        for shard_id in self.shard_ids:
            # Shards do their own cleanup (couples, locks, floors, routes)
            # and broadcast the removed links; their link sets are disjoint
            # so the COUPLE_UPDATEs pass through without duplication.
            self._forward(shard_id, message, suppress=_UNREGISTER_SUPPRESS)
        self.mirror.remove_instance(instance_id)
        self._home = {
            gid: home for gid, home in self._home.items() if gid[0] != instance_id
        }
        for table in (self._lock_routes, self._floor_routes, self._floor_expected):
            for key in [k for k in table if k[0] == instance_id]:
                del table[key]
        self._pending_routes = {
            msg_id: route
            for msg_id, route in self._pending_routes.items()
            if route[1] != instance_id
        }
        self.registry.remove(instance_id)
        self._broadcast(
            kinds.INSTANCE_LIST,
            {"roster": self.registry.roster(), "left": instance_id},
        )

    def _on_permission_set(self, message: Message) -> None:
        # Every shard enforces ACLs, so the rule lands everywhere; only the
        # first shard's reply (or error) travels back to the client.
        self._absorb_permission_set(message)
        self._forward(self.shard_ids[0], message)
        for shard_id in self.shard_ids[1:]:
            self._forward(shard_id, message, suppress=_SECONDARY_SUPPRESS)

    def _absorb_permission_set(self, message: Message) -> None:
        """Mirror a rule change the shards are about to commit.

        Applies the same admission check the shard handler does (own
        objects, or any for admins) so the mirror never holds a rule the
        shards rejected; malformed payloads fail later in the shard's
        handler, which produces the client-facing error.
        """
        try:
            from repro.server.permissions import PermissionRule

            payload = message.payload
            rule = PermissionRule.from_wire(dict(payload["rule"]))
            user = self.registry.get(message.sender).user
            if user not in self.admin_users and rule.instance_id != message.sender:
                return
            if payload.get("action", "add") == "remove":
                self.acl_mirror.remove(rule)
            else:
                self.acl_mirror.add(rule)
        except self._MALFORMED:
            return

    def _on_catchup(self, message: Message) -> None:
        """Route a late joiner's catch-up to the shard whose log it wants.

        Shards journal independently, so a catch-up position is
        per-shard; the payload names the shard (default: the first).
        """
        shard_id = str(message.payload.get("shard", "")) or self.shard_ids[0]
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id!r}")
        self._forward(shard_id, message)

    # ------------------------------------------------------------------
    # Couple links: the only operations that can move a group
    # ------------------------------------------------------------------

    def _on_couple(self, message: Message) -> None:
        payload = message.payload
        source = gid_from_wire(payload["source"])
        target = gid_from_wire(payload["target"])
        home_source = self._home_of(source)
        home_target = self._home_of(target)
        if home_source != home_target:
            # The link merges two groups homed on different shards: move
            # one group to the other's home, then apply the couple there.
            # Hash placement moves the smaller group (fewer rows to
            # transfer); load placement keeps the busier shard from
            # accreting more groups by moving *toward* the less loaded
            # home, breaking ties on group size.
            group_source = self.mirror.group_of(source)
            group_target = self.mirror.group_of(target)
            source_wins = len(group_source) >= len(group_target)
            if self.placement == "load":
                loads = self.shard_loads()
                load_source = loads.get(home_source, 0)
                load_target = loads.get(home_target, 0)
                if load_source != load_target:
                    source_wins = load_source < load_target
            if source_wins:
                winner, moving, loser = home_source, group_target, home_target
            else:
                winner, moving, loser = home_target, group_source, home_source
            self._migrate(moving, loser, winner)
        else:
            winner = home_source
        self._forward(winner, message)

    def _on_decouple(self, message: Message) -> None:
        payload = message.payload
        if "object" in payload:
            obj = gid_from_wire(payload["object"])
            prefix = obj[1].rstrip("/") + "/"
            affected = {
                gid
                for gid in self.mirror.objects_of_instance(obj[0])
                if gid[1] == obj[1] or gid[1].startswith(prefix)
            }
            shard_ids = sorted({self._home_of(gid) for gid in affected})
            if not shard_ids:
                # Nothing coupled below the path: one shard produces the
                # noop confirmation (or the strict-mode error).
                shard_ids = [self._home_of(obj)]
        else:
            source = gid_from_wire(payload["source"])
            target = gid_from_wire(payload["target"])
            shard_ids = [
                self._home.get(source)
                or self._home.get(target)
                or self._ring_home(source)
            ]
        for shard_id in shard_ids:
            self._forward(shard_id, message)

    # ------------------------------------------------------------------
    # Single-shard routing
    # ------------------------------------------------------------------

    def _route(self, message: Message) -> Optional[str]:
        """The shard a routed-kind message belongs to (None = drop)."""
        kind = message.kind
        payload = message.payload
        if kind == kinds.LOCK_REQUEST:
            source = gid_from_wire(payload["source"])
            shard_id = self._home_of(source)
            token = int(payload.get("token", 0))
            self._lock_routes[(message.sender, token)] = shard_id
            return shard_id
        if kind == kinds.UNLOCK:
            token = int(payload.get("token", 0))
            shard_id = self._lock_routes.pop((message.sender, token), None)
            if shard_id is not None:
                return shard_id
            objects = payload.get("objects") or ()
            if objects:
                return self._home_of(gid_from_wire(objects[0]))
            return self._ring_home((message.sender, ""))
        if kind == kinds.EVENT:
            event_wire = dict(payload.get("event", {}))
            source = (
                str(event_wire.get("instance_id", message.sender)),
                str(event_wire.get("source_path", "")),
            )
            shard_id = self._home_of(source)
            if payload.get("release", True):
                # The shard releases the floor after this event's acks;
                # the grant's UNLOCK route will never be used again.
                token = int(payload.get("token", 0))
                self._lock_routes.pop((message.sender, token), None)
            return shard_id
        if kind == kinds.EVENT_ACK:
            owner = payload.get("owner")
            if not owner:
                return None
            key = (str(owner[0]), int(owner[1]))
            shard_id = self._floor_routes.get(key)
            if shard_id is None:
                return None  # late ack for a floor already gone
            remaining = self._floor_expected.get(key, 0) - 1
            if remaining <= 0:
                self._floor_routes.pop(key, None)
                self._floor_expected.pop(key, None)
            else:
                self._floor_expected[key] = remaining
            return shard_id
        if kind in (kinds.FETCH_STATE, kinds.REMOTE_COPY):
            return self._home_of(gid_from_wire(
                payload["object"] if kind == kinds.FETCH_STATE else payload["source"]
            ))
        if kind == kinds.PUSH_STATE:
            return self._home_of(gid_from_wire(payload["target"]))
        if kind in (kinds.HISTORY_PUSH, kinds.UNDO_REQUEST, kinds.RESYNC_REQUEST):
            return self._home_of(gid_from_wire(payload["object"]))
        if kind in (kinds.STATE_REPLY, kinds.ERROR):
            route = self._pending_routes.pop(message.reply_to or -1, None)
            if route is None:
                return None  # late or duplicate reply; drop like the server
            return route[0]
        if kind in (kinds.COMMAND, kinds.COMMAND_REPLY):
            # Stateless relays: any shard can serve them (all hold the full
            # registry); hash the sender to spread the load.
            return self.ring.node_for(message.sender)
        raise ReproError(f"unroutable message kind {kind!r}")

    def _home_of(self, gid: GlobalId) -> str:
        home = self._home.get(gid)
        return home if home is not None else self._ring_home(gid)

    def _ring_home(self, gid: GlobalId) -> str:
        return self.ring.node_for(f"{gid[0]}:{gid[1]}")

    # ------------------------------------------------------------------
    # Shard invocation
    # ------------------------------------------------------------------

    def _forward(
        self,
        shard_id: str,
        message: Message,
        suppress: Optional[FrozenSet[str]] = None,
    ) -> None:
        self._shard_stats[shard_id].record(
            message, self.codec.wire_size(message), shard_id
        )
        self._model_service(shard_id)
        obs = self.obs
        if obs.tracing and message.trace is not None:
            # One routing hop per traced message, regardless of shard
            # count — parity tests rely on the trees being identical for
            # 1, 2 or 4 shards.  Re-stamp so the shard's receive span
            # nests under the routing hop.
            span = obs.spans.start(
                obs_tracing.CLUSTER_ROUTE,
                trace_id=message.trace[0],
                parent_id=message.trace[1],
                endpoint=ROUTER_ID,
                shard=shard_id,
                kind=message.kind,
            )
            message = dataclasses.replace(
                message, trace=(message.trace[0], span.span_id)
            )
            try:
                self._call_shard(shard_id, message, suppress=suppress)
            finally:
                obs.spans.finish(span)
            return
        self._call_shard(shard_id, message, suppress=suppress)

    def _call_shard(
        self,
        shard_id: str,
        message: Message,
        suppress: Optional[FrozenSet[str]] = None,
    ) -> None:
        previous = self._suppress
        self._suppress = suppress
        try:
            self.shards[shard_id].handle_message(message)
        finally:
            self._suppress = previous

    def _on_shard_send(self, shard_id: str, message: Message) -> None:
        """Every shard-emitted message funnels through here."""
        self._shard_stats[shard_id].record(
            message, self.codec.wire_size(message), resolve_destination(message)
        )
        if message.to == ROUTER_ID:
            if message.reply_to is not None:
                self._captured[message.reply_to] = message
            return
        if self._suppress is not None and message.kind in self._suppress:
            return
        if message.kind == kinds.COUPLE_UPDATE:
            self._absorb_couple_update(shard_id, message.payload)
        elif message.kind == kinds.FETCH_STATE:
            self._pending_routes[message.msg_id] = (shard_id, message.to)
        elif message.kind == kinds.EVENT_BROADCAST:
            owner = message.payload.get("owner")
            if owner:
                key = (str(owner[0]), int(owner[1]))
                self._floor_routes[key] = shard_id
                self._floor_expected[key] = self._floor_expected.get(key, 0) + 1
        self._emit(message)

    def _absorb_couple_update(self, shard_id: str, payload: Mapping[str, Any]) -> None:
        """Track shard-committed couple changes in the router's mirror.

        The same update arrives once per addressee (reply + broadcasts);
        the mirror operations are idempotent, exactly as on clients.
        """
        link = coupling.apply_couple_update(self.mirror, payload)
        if link is None:
            return
        if payload.get("action") == "add":
            # The emitting shard owns the (possibly merged) group now.
            for gid in self.mirror.group_of(link.source):
                self._home[gid] = shard_id
        else:
            for endpoint in (link.source, link.target):
                if len(self.mirror.group_of(endpoint)) > 1:
                    continue
                # Back to a singleton: drop the pin unless the object's
                # state (history, locks) lives away from its ring home.
                if self._home.get(endpoint) == self._ring_home(endpoint):
                    del self._home[endpoint]

    # ------------------------------------------------------------------
    # Group migration
    # ------------------------------------------------------------------

    def _migrate(
        self, objects: Iterable[GlobalId], from_shard: str, to_shard: str
    ) -> None:
        """Move a couple group (and everything it owns) between shards."""
        moving = frozenset(objects)
        self.migrations += 1
        self._frozen.update(moving)
        try:
            export = Message(
                kind=kinds.MIGRATE_EXPORT,
                sender=ROUTER_ID,
                payload={"objects": [gid_to_wire(g) for g in sorted(moving)]},
            )
            state = self._shard_request(from_shard, export, kinds.MIGRATE_STATE)
            install = Message(
                kind=kinds.MIGRATE_IMPORT,
                sender=ROUTER_ID,
                payload=dict(state.payload),
            )
            self._shard_request(to_shard, install, kinds.MIGRATE_ACK)
            for gid in moving:
                self._home[gid] = to_shard
            for floor in state.payload.get("floors", ()):
                owner = floor["owner"]
                key = (str(owner[0]), int(owner[1]))
                if key in self._lock_routes:
                    self._lock_routes[key] = to_shard
                if key in self._floor_routes:
                    self._floor_routes[key] = to_shard
            # Both journals observed the move (EXPORT on the source,
            # IMPORT on the target); stamp the new routing epoch so
            # their next snapshots record which era they belong to.
            for shard_id in (from_shard, to_shard):
                persist = getattr(self.shards[shard_id], "persistence", None)
                if persist is not None:
                    persist.epoch = self.migrations
        finally:
            self._frozen.difference_update(moving)
            self._drain_buffer()

    def _shard_request(
        self, shard_id: str, message: Message, expect: str
    ) -> Message:
        """Synchronously ask a shard and return its captured reply."""
        self._forward(shard_id, message)
        reply = self._captured.pop(message.msg_id, None)
        if reply is None or reply.kind != expect:
            detail = reply.payload.get("reason") if reply is not None else "no reply"
            raise ReproError(
                f"shard {shard_id!r} failed {message.kind}: {detail}"
            )
        return reply

    def _touches_frozen(self, message: Message) -> bool:
        """Whether *message* addresses an object that is mid-migration."""
        for gid in self._scoped_gids(message):
            if gid in self._frozen:
                return True
        return False

    @staticmethod
    def _scoped_gids(message: Message) -> Tuple[GlobalId, ...]:
        payload = message.payload
        kind = message.kind
        try:
            if kind in (kinds.COUPLE, kinds.REMOTE_COUPLE,
                        kinds.DECOUPLE, kinds.REMOTE_DECOUPLE):
                gids = []
                if "object" in payload:
                    gids.append(gid_from_wire(payload["object"]))
                else:
                    gids.append(gid_from_wire(payload["source"]))
                    gids.append(gid_from_wire(payload["target"]))
                return tuple(gids)
            if kind == kinds.LOCK_REQUEST:
                return (gid_from_wire(payload["source"]),)
            if kind == kinds.UNLOCK:
                objects = payload.get("objects") or ()
                return tuple(gid_from_wire(g) for g in objects)
            if kind == kinds.EVENT:
                event_wire = dict(payload.get("event", {}))
                return ((
                    str(event_wire.get("instance_id", message.sender)),
                    str(event_wire.get("source_path", "")),
                ),)
            if kind in (kinds.FETCH_STATE, kinds.HISTORY_PUSH,
                        kinds.UNDO_REQUEST, kinds.RESYNC_REQUEST):
                return (gid_from_wire(payload["object"]),)
            if kind == kinds.PUSH_STATE:
                return (gid_from_wire(payload["target"]),)
            if kind == kinds.REMOTE_COPY:
                return (
                    gid_from_wire(payload["source"]),
                    gid_from_wire(payload["target"]),
                )
        except (KeyError, ValueError, TypeError):
            return ()  # malformed payloads fail in the normal dispatch path
        return ()

    def _drain_buffer(self) -> None:
        if self._frozen or not self._migration_buffer:
            return
        pending, self._migration_buffer = self._migration_buffer, []
        for message in pending:
            self._safe_dispatch(message)

    # ------------------------------------------------------------------
    # Live resharding (docs/CLUSTER.md)
    # ------------------------------------------------------------------

    @staticmethod
    def _group_key(group: Iterable[GlobalId]) -> str:
        """The ring key a stateful group hashes under: its least member.

        Matches :meth:`_ring_home` for singletons, so an unpinned object
        reshards exactly where its live routing would send it.
        """
        gid = min(group)
        return f"{gid[0]}:{gid[1]}"

    def _shard_inventory(self, shard_id: str) -> List[List[GlobalId]]:
        """Ask one shard for its stateful groups (SHARD_INVENTORY)."""
        survey = Message(
            kind=kinds.SHARD_INVENTORY, sender=ROUTER_ID, payload={}
        )
        reply = self._shard_request(
            shard_id, survey, kinds.SHARD_INVENTORY_REPLY
        )
        return [
            [gid_from_wire(g) for g in group]
            for group in reply.payload.get("groups", ())
        ]

    def _bootstrap_shard(self, shard_id: str) -> None:
        """Ship the roster and ACL table to a freshly added shard."""
        self._forward(
            shard_id,
            Message(
                kind=kinds.SHARD_SYNC,
                sender=ROUTER_ID,
                payload={
                    "records": [r.to_wire() for r in self.registry.records()],
                    "access": self.acl_mirror.export_state(),
                },
            ),
        )

    def shard_loads(self) -> Dict[str, int]:
        """Messages handled per shard — the obs layer's load signal.

        The same counter the per-shard ``TrafficStats`` export to the
        metrics registry; ``placement="load"`` drives its decisions off
        this instead of pure hashing.
        """
        return {
            shard_id: stats.messages
            for shard_id, stats in self._shard_stats.items()
        }

    def _least_loaded(self, candidates: Iterable[str]) -> str:
        loads = self.shard_loads()
        return min(candidates, key=lambda sid: (loads.get(sid, 0), sid))

    def _next_shard_id(self) -> str:
        n = len(self.shards)
        while f"shard-{n}" in self.shards:
            n += 1
        return f"shard-{n}"

    def add_shard(self, shard_id: Optional[str] = None) -> str:
        """Grow the ring by one shard, live, with minimal group movement.

        The new shard is built, bootstrapped (roster + ACLs via
        SHARD_SYNC), and receives exactly the stateful groups whose ring
        ownership the added node takes over — consistent hashing keeps
        that to ~1/N of the keyspace, and pinned groups that already
        live away from their ring home do not move at all.  Returns the
        new shard id; the move list lands in :attr:`last_reshard`.
        """
        shard_id = shard_id or self._next_shard_id()
        if shard_id in self.shards:
            raise ValueError(f"shard {shard_id!r} already exists")
        self._create_shard(shard_id)
        obs = self.obs
        if obs.enabled:
            configure = getattr(
                self.shards[shard_id], "configure_observability", None
            )
            if configure is not None:
                configure(obs, shard=shard_id)
            if obs.registry.enabled:
                self._shard_stats[shard_id].register_into(
                    obs.registry, shard=shard_id
                )
        self._bootstrap_shard(shard_id)
        new_ring = HashRing(self.shard_ids + (shard_id,), vnodes=self.vnodes)
        moves: List[Tuple[List[GlobalId], str, str]] = []
        for sid in self.shard_ids:
            for group in self._shard_inventory(sid):
                key = self._group_key(group)
                if (
                    self.ring.node_for(key) != new_ring.node_for(key)
                    and new_ring.node_for(key) == shard_id
                ):
                    moves.append((group, sid, shard_id))
        self.shard_ids = self.shard_ids + (shard_id,)
        self.ring = new_ring
        for group, from_shard, to_shard in moves:
            self._migrate(group, from_shard, to_shard)
        self.last_reshard = {
            "action": "add",
            "shard": shard_id,
            "moved": [sorted(group) for group, _, _ in moves],
        }
        return shard_id

    def remove_shard(self, shard_id: str) -> List[List[GlobalId]]:
        """Drain a shard and retire it, live.

        Every stateful group on the leaving shard is handed off — to its
        new ring home, or with ``placement="load"`` to the least-loaded
        survivor — then the shard is retired.  Traffic arriving during
        the handoff queues behind it (the router is single-threaded per
        message) and replays against the new homes.  Returns the moved
        groups.
        """
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id!r}")
        if len(self.shards) <= 1:
            raise ReproError("cannot remove the last shard")
        survivors = tuple(s for s in self.shard_ids if s != shard_id)
        new_ring = HashRing(survivors, vnodes=self.vnodes)
        inventory = self._shard_inventory(shard_id)
        moves: List[Tuple[List[GlobalId], str]] = []
        for group in inventory:
            if self.placement == "load":
                target = self._least_loaded(survivors)
            else:
                target = new_ring.node_for(self._group_key(group))
            moves.append((group, target))
        for group, target in moves:
            self._migrate(group, shard_id, target)
        self.shard_ids = survivors
        self.ring = new_ring
        # Migration rewired the routes of everything stateful; scrub the
        # residue (denied-lock routes, in-flight fetch correlations) so
        # nothing still points at the retired shard.
        for gid in [g for g, h in self._home.items() if h == shard_id]:
            del self._home[gid]
        for table in (self._lock_routes, self._floor_routes):
            for key in [k for k, v in table.items() if v == shard_id]:
                table[key] = self._ring_home((key[0], ""))
        self._pending_routes = {
            msg_id: route
            for msg_id, route in self._pending_routes.items()
            if route[0] != shard_id
        }
        self._retire_shard(shard_id)
        self.last_reshard = {
            "action": "remove",
            "shard": shard_id,
            "moved": [sorted(group) for group, _ in moves],
        }
        return [sorted(group) for group, _ in moves]

    # ------------------------------------------------------------------
    # Cluster administration (operator CLI; docs/CLUSTER.md)
    # ------------------------------------------------------------------

    def cluster_status(self) -> Dict[str, Any]:
        """The CLUSTER_STATUS_REPLY payload (also handy for tests)."""
        return {
            "shards": list(self.shard_ids),
            "placement": self.placement,
            "loads": self.shard_loads(),
            "migrations": self.migrations,
            "registered": len(self.registry),
            "couple_groups": len(self.mirror.groups()),
            "homes": len(self._home),
        }

    def _on_cluster_status(self, message: Message) -> None:
        self._emit(
            message.reply(
                kinds.CLUSTER_STATUS_REPLY, SERVER_ID, **self.cluster_status()
            )
        )

    def _on_cluster_reshard(self, message: Message) -> None:
        payload = message.payload
        action = payload.get("action")
        if action == "add":
            shard_id = self.add_shard(str(payload.get("shard") or "") or None)
        elif action == "remove":
            shard_id = str(payload["shard"])
            self.remove_shard(shard_id)
        else:
            raise ValueError(f"unknown reshard action {action!r}")
        self._emit(
            message.reply(
                kinds.CLUSTER_RESHARD_REPLY,
                SERVER_ID,
                action=action,
                shard=shard_id,
                shards=list(self.shard_ids),
                moved=self.last_reshard["moved"],
            )
        )

    # ------------------------------------------------------------------
    # Modeled parallelism (benchmarks)
    # ------------------------------------------------------------------

    def _model_service(self, shard_id: str) -> None:
        if not self.service_time:
            return
        start = max(self.clock.now(), self._busy_until.get(shard_id, 0.0))
        self._busy_until[shard_id] = start + self.service_time

    def modeled_makespan(self) -> float:
        """When the busiest shard finishes its (modeled) serial work.

        Only meaningful with a non-zero ``service_time``: each message a
        shard handles occupies it for that long, so the makespan shrinks
        as load spreads over more shards.
        """
        return max(self._busy_until.values(), default=0.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def shard_of(self, gid: GlobalId) -> str:
        """The shard currently owning *gid*'s couple group."""
        return self._home_of(gid)

    def shard_traffic(self) -> TrafficStats:
        """All shard transports aggregated into one cluster-wide snapshot."""
        total = TrafficStats()
        for stats in self._shard_stats.values():
            total.merge(stats)
        return total

    def reset_shard_traffic(self) -> None:
        for stats in self._shard_stats.values():
            stats.reset()

    def stats(self) -> Dict[str, Any]:
        """Operational counters, cluster-wide and per shard."""
        per_shard = {
            shard_id: {
                "messages": self._shard_stats[shard_id].messages,
                "couple_links": len(shard.couples),
                "couple_groups": len(shard.couples.groups()),
                "locks_held": len(shard.locks),
                "history_entries": len(shard.history),
                "processed": dict(shard.processed),
                "persistence": (
                    shard.persistence.stats()
                    if shard.persistence is not None
                    else None
                ),
            }
            for shard_id, shard in self.shards.items()
        }
        routing = RoutingStats()
        routing.merge(self.routing)
        for shard in self.shards.values():
            routing.merge(shard.routing)
        return {
            "shards": len(self.shards),
            "migrations": self.migrations,
            "registered": len(self.registry),
            "couple_links": len(self.mirror),
            "couple_groups": len(self.mirror.groups()),
            "homes": len(self._home),
            "processed": dict(self.processed),
            "routing": routing.snapshot(),
            "per_shard": per_shard,
        }
