"""The shard worker: one ``CosoftServer`` in its own OS process.

``python -m repro.cluster.worker`` is what the multi-process supervisor
(:mod:`repro.cluster.proc`) spawns per shard.  The worker hosts a plain
:class:`~repro.server.server.CosoftServer` behind a
:class:`ShardEndpoint` adapter on the asyncio runtime, journals every
mutating operation to its own op log, and speaks the private shard plane
(SHARD_* kinds, docs/CLUSTER.md) with the router over the ordinary aio
transport.

Exactly-once delivery across worker crashes
-------------------------------------------
The router wraps every message for a shard in a SHARD_FORWARD envelope
stamped with a monotonic **delivery id** (``did``) and keeps it pending
until the worker's SHARD_UPLINK acknowledges that id.  The worker makes
the acknowledgement meaningful by journaling ``did`` *and the outputs
the operation produced* in the same op-log entry as the operation itself
(one atomic append, ``fsync="always"``), and only then replying.  After
a crash the worker recovers from the journal, reports its newest
journaled ``did`` in SHARD_HELLO, and the router re-sends whatever is
still pending: a re-delivered id at or below the recovered high-water
mark is **not** re-executed — its journaled outputs are re-sent verbatim
— while ids above it re-apply exactly the operations whose durability
the dead worker never confirmed.  State mutates exactly once; outputs
are at-least-once, which the client replicas already dedup (event
sequence numbers, idempotent state installs).
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import os
import signal
import sys
import threading
from typing import Any, Dict, List, Optional

from repro.net import kinds
from repro.net.message import Message
from repro.net.transport import ROUTER_ID, TrafficStats, Transport
from repro.obs import NULL_OBS, Observability
from repro.obs import tracing as obs_tracing
from repro.obs.remote import SampleDiffer
from repro.persist.journal import PersistenceConfig
from repro.persist.recovery import recover_server
from repro.server.permissions import AccessControl
from repro.server.server import CosoftServer

__all__ = ["ShardEndpoint", "build_worker", "main"]


class _CollectingTransport(Transport):
    """The shard server's outbound handle inside a worker.

    Everything the server emits during one forwarded dispatch is
    collected (post-suppression) so the endpoint can journal it with the
    operation and ship it uplink in the acknowledgement.
    """

    def __init__(self, endpoint: "ShardEndpoint"):
        self._endpoint = endpoint
        self._stats = TrafficStats()
        self._closed = False

    @property
    def local_id(self) -> str:
        return "server"

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    def send(self, message: Message) -> None:
        self._endpoint._collect(message)

    def recv(self, message: Message) -> None:
        self._endpoint.server.handle_message(message)

    def drive(self, predicate, timeout: float = 5.0) -> bool:
        return bool(predicate())

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class _JournalWithDelivery:
    """Persistence proxy stamping the in-flight delivery into each entry.

    The server calls ``record(server, message)`` after a handler
    succeeds; this proxy widens that into ``record(server, message,
    did=..., outs=...)`` so the op, its delivery id and its outputs are
    one atomic, fsynced append — the property the ack/replay protocol
    rests on.  Everything else delegates to the real journal.
    """

    def __init__(self, inner: Any, endpoint: "ShardEndpoint"):
        self._inner = inner
        self._endpoint = endpoint

    def record(self, server: Any, message: Any) -> int:
        endpoint = self._endpoint
        if endpoint._current_did is None:
            return self._inner.record(server, message)
        return self._inner.record(
            server,
            message,
            did=endpoint._current_did,
            outs=list(endpoint._outs or ()),
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class ShardEndpoint:
    """Adapter between the shard plane and a plain ``CosoftServer``.

    Runs under :class:`~repro.server.runtime.AsyncServerRuntime` (same
    ``handle_message``/``bind`` contract); unwraps SHARD_FORWARD
    envelopes, dispatches the inner message, and answers each delivery
    id with one SHARD_UPLINK carrying the collected outputs.
    """

    def __init__(
        self, server: CosoftServer, shard_id: str, obs: Any = NULL_OBS
    ):
        self.server = server
        self.shard_id = shard_id
        self.obs = obs
        #: Delta cache answering OBS pulls: repeated scrapes ship only
        #: samples whose values changed since the last pull.
        self._obs_differ = SampleDiffer()
        self._transport: Optional[Any] = None
        #: Newest delivery id whose effects are journaled (or executed,
        #: for relay-only ops) — re-deliveries at or below it are
        #: answered from :attr:`_last_outs` without re-execution.
        self.max_did = 0
        self._last_outs: Dict[int, List[Dict[str, Any]]] = {}
        self._current_did: Optional[int] = None
        self._outs: Optional[List[Dict[str, Any]]] = None
        self._suppress: Optional[frozenset] = None
        server.bind(_CollectingTransport(self))
        if server.persistence is not None:
            self._scan_journal(server.persistence)
            server.persistence = _JournalWithDelivery(
                server.persistence, self
            )

    def _scan_journal(self, persistence: Any) -> None:
        """Recover the delivery high-water mark and its stored outputs."""
        for entry in persistence.entries_after(0):
            did = entry.get("did")
            if did is None:
                continue
            did = int(did)
            if did > self.max_did:
                self.max_did = did
                self._last_outs = {did: list(entry.get("outs") or ())}

    # -- runtime contract ----------------------------------------------

    def bind(self, transport: Any) -> None:
        self._transport = transport

    def handle_message(self, message: Message) -> None:
        if message.sender != ROUTER_ID:
            return  # the shard plane only talks to the router
        kind = message.kind
        if kind == kinds.SHARD_FORWARD:
            self._on_forward(message)
        elif kind == kinds.SHARD_ATTACH:
            self._send_control(kinds.SHARD_HELLO, max_did=self.max_did)
        elif kind == kinds.SHARD_PING:
            self._send_control(
                kinds.SHARD_PONG,
                max_did=self.max_did,
                stats=self.server.stats(),
            )
        elif kind == kinds.SHARD_OBS_PULL:
            self._on_obs_pull(message)

    # -- internals ------------------------------------------------------

    def _send(self, message: Message) -> None:
        if self._transport is not None:
            self._transport.send(message)

    def _send_control(self, kind: str, **payload: Any) -> None:
        payload.setdefault("shard", self.shard_id)
        self._send(
            Message(
                kind=kind, sender=self.shard_id, to=ROUTER_ID, payload=payload
            )
        )

    def _collect(self, message: Message) -> None:
        outs = self._outs
        if outs is None:
            return  # send outside a forwarded dispatch: nowhere to go
        # Same precedence as the embedded router: router-addressed
        # control replies always pass; suppressed kinds are dropped here
        # so duplicate fan-out replies never cross the wire at all.
        suppress = self._suppress
        if (
            message.to != ROUTER_ID
            and suppress
            and message.kind in suppress
        ):
            return
        outs.append(message.to_wire())

    def _on_obs_pull(self, message: Message) -> None:
        """Answer a supervisor scrape with this worker's telemetry delta.

        ``since`` is the epoch the supervisor last saw — a mismatch (or
        a fresh process after a crash) forces a full snapshot, so the
        supervisor's merged cache can never go stale silently.
        """
        obs = self.obs
        since = message.payload.get("since")
        if not (obs.enabled and obs.registry.enabled):
            self._send_control(
                kinds.SHARD_OBS_REPLY,
                epoch=self._obs_differ.epoch,
                full=True,
                samples=[],
                spans=[],
                trace_stats={},
            )
            return
        epoch, full, samples = self._obs_differ.diff(
            obs.registry.collect(), since
        )
        self._send_control(
            kinds.SHARD_OBS_REPLY,
            epoch=epoch,
            full=full,
            samples=samples,
            spans=obs.spans.drain() if obs.tracing else [],
            trace_stats=obs.spans.stats() if obs.tracing else {},
        )

    def _on_forward(self, message: Message) -> None:
        payload = message.payload
        did = int(payload["did"])
        if did <= self.max_did:
            # Redelivery of something already applied (the ack was lost
            # with the previous process): do not re-execute — replay the
            # journaled outputs so the router can finish its bookkeeping.
            self._send_uplink(did, self._last_outs.get(did, []))
            return
        suppress_wire = payload.get("suppress") or ()
        inner = Message.from_wire(payload["msg"])
        obs = self.obs
        span = None
        if obs.tracing and inner.trace is not None:
            # The worker half of the cross-process hop: the supervisor's
            # cluster.forward span id rides in on the inner message, and
            # re-stamping makes server.receive nest under worker.apply.
            span = obs.spans.start(
                obs_tracing.WORKER_APPLY,
                trace_id=inner.trace[0],
                parent_id=inner.trace[1],
                endpoint=self.shard_id,
                did=did,
            )
            inner = dataclasses.replace(
                inner, trace=(inner.trace[0], span.span_id)
            )
        self._current_did = did
        self._outs = []
        self._suppress = frozenset(suppress_wire) if suppress_wire else None
        try:
            self.server.handle_message(inner)
        finally:
            outs, self._outs = self._outs, None
            self._current_did = None
            self._suppress = None
            if span is not None:
                obs.spans.finish(span)
        self.max_did = did
        # Dispatch is serial per shard, so only the newest delivery can
        # ever be re-asked for; keeping one entry bounds memory.
        self._last_outs = {did: outs}
        self._send_uplink(did, outs)

    def _send_uplink(self, did: int, outs: List[Dict[str, Any]]) -> None:
        self._send_control(kinds.SHARD_UPLINK, did=did, outs=outs)

    def stats(self) -> Dict[str, Any]:
        return self.server.stats()


def build_worker(
    *,
    shard_id: str,
    directory: str,
    default_allow: bool = True,
    admin_users: tuple = (),
    ack_release: bool = True,
    history_depth: int = 100,
    floor_lease: float = 30.0,
    couple_scope: str = "all",
    snapshot_every: int = 500,
    observability: bool = False,
) -> ShardEndpoint:
    """Build (or recover) the shard server and wrap it for the plane.

    ``fsync="always"`` is forced: the ack/replay protocol requires that
    an acknowledged operation is durable *before* the ack leaves.

    With *observability* the worker runs a full registry + span recorder
    of its own (span ids prefixed ``<shard-id>.`` so they stay unique
    fleet-wide) and answers the supervisor's SHARD_OBS_PULL scrapes.
    """
    persistence = PersistenceConfig(
        directory=directory,
        fsync="always",
        snapshot_every=snapshot_every,
    ).build()
    server_kwargs = dict(
        access=AccessControl(default_allow=default_allow),
        admin_users=tuple(admin_users),
        ack_release=ack_release,
        history_depth=history_depth,
        floor_lease=floor_lease,
        couple_scope=couple_scope,
    )
    if persistence.log.last_seq > 0:
        server = recover_server(persistence, **server_kwargs)
    else:
        server = CosoftServer(persistence=persistence, **server_kwargs)
    obs: Any = NULL_OBS
    if observability:
        obs = Observability()
        obs.spans.id_prefix = f"{shard_id}."
        # No shard label here: the supervisor stamps shard=<id> onto
        # every pulled sample, so worker registries stay shard-agnostic.
        server.configure_observability(obs)
    return ShardEndpoint(server, shard_id, obs=obs)


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="One COSOFT shard as an OS process (docs/CLUSTER.md).",
    )
    parser.add_argument("--shard-id", required=True)
    parser.add_argument("--dir", required=True,
                        help="per-shard journal directory")
    parser.add_argument("--portfile", required=True,
                        help="file to write the bound port into once ready")
    parser.add_argument("--codec", default="binary")
    parser.add_argument("--wire-batching", action="store_true")
    parser.add_argument("--no-default-allow", action="store_true")
    parser.add_argument("--admin-users", default="")
    parser.add_argument("--no-ack-release", action="store_true")
    parser.add_argument("--history-depth", type=int, default=100)
    parser.add_argument("--floor-lease", type=float, default=30.0)
    parser.add_argument("--couple-scope", default="all")
    parser.add_argument("--snapshot-every", type=int, default=500)
    parser.add_argument(
        "--observability", action="store_true",
        help="run a live metrics registry + span recorder in this worker "
             "(the supervisor also sets REPRO_OBSERVABILITY in the spawn "
             "env, which this flag defaults from)",
    )
    parser.add_argument(
        "--msg-id-base", type=int, default=0,
        help="start of this process's msg_id space (the supervisor hands "
             "each spawn a disjoint range so correlation ids emitted by "
             "different shard processes can never collide at the router)",
    )
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(argv)
    if args.msg_id_base:
        from repro.net import message as message_mod

        message_mod._msg_counter = itertools.count(args.msg_id_base + 1)
    observability = args.observability or os.environ.get(
        "REPRO_OBSERVABILITY", ""
    ) not in ("", "0")
    endpoint = build_worker(
        shard_id=args.shard_id,
        directory=args.dir,
        default_allow=not args.no_default_allow,
        admin_users=tuple(u for u in args.admin_users.split(",") if u),
        ack_release=not args.no_ack_release,
        history_depth=args.history_depth,
        floor_lease=args.floor_lease,
        couple_scope=args.couple_scope,
        snapshot_every=args.snapshot_every,
        observability=observability,
    )
    from repro.server.runtime import AsyncServerRuntime

    runtime = AsyncServerRuntime(
        endpoint,
        port=0,
        codec=args.codec,
        wire_batching=args.wire_batching,
    )
    done = threading.Event()

    def _shutdown(*_sig: object) -> None:
        done.set()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)

    # Orphan watchdog: the supervisor holds our stdin pipe; EOF means the
    # supervisor is gone and nobody will ever kill us — exit instead of
    # leaking a process per crashed test run.
    def _watch_stdin() -> None:
        try:
            while sys.stdin.buffer.read(4096):
                pass
        except Exception:
            pass
        done.set()

    threading.Thread(target=_watch_stdin, daemon=True).start()

    # Atomic publish: the supervisor polls for this file, so it must
    # never observe a half-written port number.
    tmp = args.portfile + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(str(runtime.address[1]))
    os.replace(tmp, args.portfile)

    done.wait()
    try:
        runtime.close()
        persist = endpoint.server.persistence
        if persist is not None:
            persist.sync()
    finally:
        os._exit(0)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
