"""repro — reproduction of Zhao & Hoppe, ICDCS 1994.

*Supporting Flexible Communication in Heterogeneous Multi-User
Environments*: flexible coupling of arbitrary UI objects between
heterogeneous application instances, synchronized by UI state and by
multiple execution through a central server.

Quick start::

    from repro import Session
    from repro.toolkit import Shell, TextField

    session = Session()                        # backend="memory"|"tcp"|"aio"
    a = session.create_instance("app-a", user="alice")
    b = session.create_instance("app-b", user="bob")

    field_a = TextField("note", parent=a.add_root(Shell("ui")))
    field_b = TextField("note", parent=b.add_root(Shell("ui")))

    a.couple(field_a, b.gid("/ui/note"))      # dynamic coupling
    field_a.commit("hello from alice")         # multiple execution
    session.pump()
    assert field_b.value == "hello from alice"

Package layout mirrors the system inventory in DESIGN.md: ``toolkit``
(CENTER-like widget substrate), ``net`` (transports), ``server`` (the
central controller), ``core`` (the coupling runtime), ``baselines``
(multiplex and UI-replicated architectures), ``apps`` (classroom, TORI,
drawing), ``workloads`` (synthetic users).
"""

from repro.core.instance import ApplicationInstance
from repro.core.compat import CorrespondenceRegistry
from repro.core.state_sync import FLEXIBLE, MERGE, STRICT
from repro.errors import ReproError
from repro.server.server import CosoftServer
from repro.session import (
    ClusterSession,
    LocalSession,
    Session,
    SessionConfig,
    TcpSession,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationInstance",
    "ClusterSession",
    "CorrespondenceRegistry",
    "CosoftServer",
    "FLEXIBLE",
    "LocalSession",
    "MERGE",
    "ReproError",
    "STRICT",
    "Session",
    "SessionConfig",
    "TcpSession",
    "__version__",
]
