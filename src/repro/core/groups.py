"""Dynamic grouping: named couple groups managed at run time (§2.2).

"In our approach, we support dynamic grouping, in that we allow each
participant to couple selectively with other participants.  These group
connections can be defined at runtime."

:class:`CouplingGroup` packages the pattern every application re-invents:
a named set of corresponding object paths shared by a dynamic set of
member instances.  The coordinator (any instance, e.g. the classroom
teacher) adds and removes members with RemoteCouple/RemoteDecouple; the
group keeps a *star topology* anchored at its first member, so the
transitive closure (§3.2) joins everyone while membership changes stay
O(paths) operations.

The anchor is re-elected automatically when it leaves — remaining members
are re-coupled to the new anchor so the group survives.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.instance import ApplicationInstance
from repro.errors import CouplingError


class CouplingGroup:
    """A named, dynamically changing couple group over fixed object paths.

    Parameters
    ----------
    coordinator:
        The instance issuing the Remote\\* operations (need not be a
        member itself — §3.3: "allow a third application instance to
        couple objects in remote instances").
    name:
        Human-readable group label (diagnostics only).
    paths:
        The corresponding object paths every member exposes.  Per-member
        path overrides support heterogeneous environments.
    """

    def __init__(
        self,
        coordinator: ApplicationInstance,
        name: str,
        paths: Sequence[str],
    ):
        if not paths:
            raise ValueError("a coupling group needs at least one path")
        self.coordinator = coordinator
        self.name = name
        self.paths: Tuple[str, ...] = tuple(paths)
        #: member instance id -> its path mapping (shared path -> local path).
        self._members: Dict[str, Dict[str, str]] = {}
        self._anchor: Optional[str] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def members(self) -> Tuple[str, ...]:
        return tuple(self._members)

    @property
    def anchor(self) -> Optional[str]:
        """The member every other member is star-coupled to."""
        return self._anchor

    def __contains__(self, instance_id: object) -> bool:
        return instance_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def add_member(
        self,
        instance_id: str,
        path_overrides: Optional[Dict[str, str]] = None,
    ) -> None:
        """Join *instance_id* to the group.

        *path_overrides* maps shared paths to the member's local paths for
        heterogeneous environments (e.g. the teacher's ``/teacher/notes``
        corresponds to a student's ``/student/exercise/answer``).
        """
        if instance_id in self._members:
            raise CouplingError(
                f"{instance_id!r} is already in group {self.name!r}"
            )
        mapping = {path: path for path in self.paths}
        if path_overrides:
            unknown = set(path_overrides) - set(self.paths)
            if unknown:
                raise ValueError(
                    f"overrides for paths outside the group: {sorted(unknown)}"
                )
            mapping.update(path_overrides)
        if self._anchor is None:
            # First member: nothing to couple yet.
            self._members[instance_id] = mapping
            self._anchor = instance_id
            return
        self._couple_to_anchor(instance_id, mapping)
        self._members[instance_id] = mapping

    def remove_member(self, instance_id: str) -> None:
        """Remove *instance_id*; re-anchors the star if needed."""
        if instance_id not in self._members:
            raise CouplingError(
                f"{instance_id!r} is not in group {self.name!r}"
            )
        assert self._anchor is not None
        if instance_id != self._anchor:
            self._decouple_from_anchor(instance_id, self._members[instance_id])
            del self._members[instance_id]
            return
        # The anchor leaves: detach everyone from it, elect a new anchor,
        # and rebuild the star.
        departing = instance_id
        for member, mapping in self._members.items():
            if member != departing:
                self._decouple_from_anchor(member, mapping)
        del self._members[departing]
        self._anchor = next(iter(self._members), None)
        if self._anchor is not None:
            for member, mapping in self._members.items():
                if member != self._anchor:
                    self._couple_to_anchor(member, mapping)

    def dissolve(self) -> None:
        """Remove every member (the group object stays reusable)."""
        for member in list(self._members):
            if len(self._members) == 1:
                self._members.clear()
                self._anchor = None
                break
            self.remove_member(member)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _anchor_gid(self, shared_path: str) -> Tuple[str, str]:
        assert self._anchor is not None
        return (self._anchor, self._members[self._anchor][shared_path])

    def _couple_to_anchor(self, instance_id: str, mapping: Dict[str, str]) -> None:
        for shared_path in self.paths:
            self.coordinator.remote_couple(
                self._anchor_gid(shared_path),
                (instance_id, mapping[shared_path]),
            )

    def _decouple_from_anchor(self, instance_id: str, mapping: Dict[str, str]) -> None:
        for shared_path in self.paths:
            self.coordinator.remote_decouple(
                self._anchor_gid(shared_path),
                (instance_id, mapping[shared_path]),
            )

    def __repr__(self) -> str:
        return (
            f"CouplingGroup({self.name!r}, members={list(self._members)}, "
            f"anchor={self._anchor!r})"
        )
