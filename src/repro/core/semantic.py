"""Semantic store/load hooks (§3.1, "Synchronizing semantic state").

Copying a complex UI object's state only guarantees consistency on the UI
level.  To carry the *semantic* data behind the surface, "application
programmers have to define two functions for each semantic data structure
to store and load application data.  They are automatically invoked in the
dominating and dominated application instances respectively when the state
of a UI object is copied."

A hook is registered per widget pathname (relative lookups walk the
registered path's subtree).  ``store()`` must return JSON-serializable
data; ``load(data)`` installs it in the receiving application.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.errors import SemanticHookError
from repro.toolkit.attributes import json_safe
from repro.toolkit.widget import UIObject

StoreFn = Callable[[], Any]
LoadFn = Callable[[Any], None]


class SemanticHookRegistry:
    """Per-instance table of store/load hook pairs keyed by pathname."""

    def __init__(self) -> None:
        self._hooks: Dict[str, Tuple[StoreFn, LoadFn]] = {}

    def register(self, pathname: str, store: StoreFn, load: LoadFn) -> None:
        """Attach a store/load pair to the widget at *pathname*."""
        if not pathname.startswith("/"):
            raise ValueError(f"semantic hooks need absolute paths: {pathname!r}")
        self._hooks[pathname] = (store, load)

    def register_widget(
        self, widget: UIObject, store: StoreFn, load: LoadFn
    ) -> None:
        self.register(widget.pathname, store, load)

    def unregister(self, pathname: str) -> bool:
        return self._hooks.pop(pathname, None) is not None

    def has_hook(self, pathname: str) -> bool:
        return pathname in self._hooks

    def paths(self) -> List[str]:
        return list(self._hooks)

    # ------------------------------------------------------------------
    # Invocation during state copies
    # ------------------------------------------------------------------

    def store_subtree(self, root: UIObject) -> Dict[str, Any]:
        """Run ``store()`` for every hooked widget inside *root*'s subtree.

        Returns a mapping of subtree-relative paths to stored data, ready to
        ship inside a state payload.  Invoked in the *dominating* instance.
        """
        result: Dict[str, Any] = {}
        root_path = root.pathname
        for pathname, (store, _load) in self._hooks.items():
            if not _inside(root_path, pathname):
                continue
            try:
                data = store()
            except Exception as exc:
                raise SemanticHookError(
                    f"store hook at {pathname!r} failed: {exc}"
                ) from exc
            if not json_safe(data):
                raise SemanticHookError(
                    f"store hook at {pathname!r} returned non-serializable data"
                )
            result[_relative(root_path, pathname)] = data
        return result

    def load_subtree(self, root: UIObject, data: Dict[str, Any]) -> List[str]:
        """Run ``load()`` for every shipped entry with a local hook.

        Invoked in the *dominated* instance after the UI state is applied.
        Entries without a matching local hook are skipped (the receiving
        application chose not to define one — the paper explicitly allows
        applications to "avoid them completely").  Returns the relative
        paths actually loaded.
        """
        loaded: List[str] = []
        root_path = root.pathname
        for rel, payload in data.items():
            pathname = root_path if not rel else f"{root_path.rstrip('/')}/{rel}"
            hook = self._hooks.get(pathname)
            if hook is None:
                continue
            try:
                hook[1](payload)
            except Exception as exc:
                raise SemanticHookError(
                    f"load hook at {pathname!r} failed: {exc}"
                ) from exc
            loaded.append(rel)
        return loaded


def _inside(root_path: str, pathname: str) -> bool:
    return pathname == root_path or pathname.startswith(
        root_path.rstrip("/") + "/"
    )


def _relative(root_path: str, pathname: str) -> str:
    if pathname == root_path:
        return ""
    return pathname[len(root_path.rstrip("/")) + 1 :]


def attach_attribute_semantics(
    registry: SemanticHookRegistry,
    widget: UIObject,
    storage: Dict[str, Any],
    key: str,
) -> None:
    """Convenience: bind a dict slot as a widget's semantic data.

    Implements the paper's recommended programming convention of "attaching
    all relevant application data to UI objects": ``storage[key]`` is
    shipped with the widget's state and replaced on load.
    """

    def store() -> Any:
        return storage.get(key)

    def load(data: Any) -> None:
        storage[key] = data

    registry.register_widget(widget, store, load)
