"""Client-side coupling helpers: the replicated couple table (§3.2).

"In a group of coupled objects, the coupling information is replicated for
each object (to be completely available locally)."  Every application
instance therefore mirrors the server's couple table, updated by the
COUPLE_UPDATE broadcasts the server emits on every link change.  The
replica answers the hot-path question — *is this object coupled at all?* —
without a server round trip, so purely local interaction stays local.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.errors import NoSuchCoupleError
from repro.server.couples import CoupleLink, CoupleTable


def apply_couple_update(table: CoupleTable, payload: Mapping[str, Any]) -> Optional[CoupleLink]:
    """Apply one COUPLE_UPDATE broadcast onto the local replica.

    Returns the affected link (None for no-op updates).  Updates are
    idempotent: the same broadcast may arrive twice (once as a direct reply
    to the requesting instance, once via a race with the broadcast path).
    """
    action = payload.get("action")
    link_wire = payload.get("link")
    if action == "noop" or not link_wire:
        return None
    link = CoupleLink.from_wire(dict(link_wire))
    if action == "add":
        table.add_link(link)
        # Interest-scoped updates carry the merged group's full link list:
        # an instance that just joined the group has never seen the
        # group's pre-existing internal links, so absorb them here
        # (idempotent — add_link is a no-op for known links).
        for group_link_wire in payload.get("links", ()):
            table.add_link(CoupleLink.from_wire(dict(group_link_wire)))
        return link
    if action == "remove":
        try:
            table.remove_link(link.source, link.target)
        except NoSuchCoupleError:
            pass  # Already removed locally (idempotent).
        return link
    raise ValueError(f"unknown couple update action {action!r}")


def bootstrap_replica(table: CoupleTable, links_wire: Any) -> int:
    """Initialize a fresh replica from the REGISTER_ACK couple dump."""
    count = 0
    for link_wire in links_wire or ():
        link = CoupleLink.from_wire(dict(link_wire))
        if table.add_link(link):
            count += 1
    return count


def subtree_is_coupled(table: CoupleTable, instance_id: str, pathname: str) -> bool:
    """Whether any object at or below *pathname* participates in a couple."""
    prefix = pathname.rstrip("/") + "/"
    for gid in table.objects_of_instance(instance_id):
        if gid[1] == pathname or gid[1].startswith(prefix):
            return True
    return False
