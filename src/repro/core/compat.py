"""Compatibility of UI objects (§3.3).

The paper couples not only identical objects:

* **Primitive objects** are compatible "if they are of the same type or if a
  correspondence relation is declared for their relevant attributes (i.e.
  each relevant attribute of O1 has a corresponding attribute of O2 that can
  be used for copying or coupling)."
* **Complex objects** O1 and O2 are *structurally compatible*
  (s-compatible) "iff there is a one-to-one mapping a between O1 and O2 so
  that: for any o in O1, a(o) is either directly compatible with o (in case
  o is primitive), or a(o) is s-compatible with o."
* "Calculating a over several levels of nesting may be costly in practice.
  Sometimes it can be pre-defined, or certain heuristics have to be used to
  avoid combinatorial explosion."  Experiment E7 measures exactly this:
  :data:`EXHAUSTIVE` backtracking vs the :data:`HEURISTIC` greedy matcher
  vs a :data:`PREDEFINED` mapping.

Structures are compared on *specs* (the dicts produced by
:func:`repro.toolkit.builder.to_spec` / ``UIObject.describe``), so the
check works on wire payloads without materializing widgets.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import IncompatibleObjectsError
from repro.toolkit.widgets.registry import widget_class

# Matching strategies
EXHAUSTIVE = "exhaustive"
HEURISTIC = "heuristic"
PREDEFINED = "predefined"
STRATEGIES = (EXHAUSTIVE, HEURISTIC, PREDEFINED)

AttributeMapping = Dict[str, str]
#: relative-path-in-source -> relative-path-in-target
ComponentMapping = Dict[str, str]


class CorrespondenceRegistry:
    """Declared correspondence relations between widget types.

    A correspondence maps each relevant attribute of type A onto an
    attribute of type B (e.g. a ``label.text`` corresponds to a
    ``textfield.value``, letting a teacher's read-only display couple with a
    student's input field).  Registration installs the inverse direction
    automatically.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str], AttributeMapping] = {}
        #: Bumped on every declaration; cached structural mappings embed the
        #: epoch in their key, so declaring a new correspondence naturally
        #: invalidates every mapping computed under the old table.
        self.epoch = 0

    def declare(
        self, type_a: str, type_b: str, mapping: Mapping[str, str]
    ) -> None:
        """Declare that *type_a* corresponds to *type_b* via *mapping*.

        *mapping* must cover every relevant attribute of *type_a* and map
        into existing attributes of *type_b*; otherwise ``ValueError``.
        """
        cls_a = widget_class(type_a)
        cls_b = widget_class(type_b)
        relevant_a = set(cls_a.ATTRIBUTES.relevant_names())
        missing = relevant_a - set(mapping)
        if missing:
            raise ValueError(
                f"correspondence {type_a}->{type_b} misses relevant "
                f"attributes {sorted(missing)}"
            )
        for attr_a, attr_b in mapping.items():
            if attr_a not in cls_a.ATTRIBUTES:
                raise ValueError(f"{type_a!r} has no attribute {attr_a!r}")
            if attr_b not in cls_b.ATTRIBUTES:
                raise ValueError(f"{type_b!r} has no attribute {attr_b!r}")
        self._table[(type_a, type_b)] = dict(mapping)
        inverse = {v: k for k, v in mapping.items()}
        self._table.setdefault((type_b, type_a), inverse)
        self.epoch += 1

    def lookup(self, type_a: str, type_b: str) -> Optional[AttributeMapping]:
        return self._table.get((type_a, type_b))

    def pairs(self) -> List[Tuple[str, str]]:
        return list(self._table)

    def __len__(self) -> int:
        return len(self._table)


#: Process-wide default registry; instances may carry their own.
DEFAULT_CORRESPONDENCES = CorrespondenceRegistry()


def spec_fingerprint(spec: Mapping[str, Any]) -> str:
    """A stable fingerprint of a builder spec's *structure*.

    Covers exactly what the structural matchers look at — widget types,
    component names and nesting — and deliberately ignores state values,
    so two transfers of the same (possibly mutated) object hash alike.
    Used as the memoization key for mapping results and as the cheap
    "did the structure change since last transfer?" test of the delta
    sync protocol.
    """

    def canon(node: Mapping[str, Any]) -> Tuple:
        return (
            node.get("type", ""),
            node.get("name", ""),
            tuple(canon(child) for child in node.get("children", ())),
        )

    return hashlib.sha1(repr(canon(spec)).encode("utf-8")).hexdigest()


class MappingCache:
    """Memoized structural-compatibility mappings (§3.3 hot path).

    "Calculating a over several levels of nesting may be costly in
    practice" — and the coupling/copy hot path recomputes the *same*
    mapping on every transfer between a stable pair of objects.  The cache
    keys on the two structure fingerprints, the matching strategy and the
    correspondence-registry epoch, so any input that could change the
    result changes the key.  Only successful mappings are stored; failures
    stay uncached (they raise, and are rare on the hot path).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = maxsize
        self._entries: Dict[Tuple, ComponentMapping] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Tuple) -> Optional[ComponentMapping]:
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(cached)

    def store(self, key: Tuple, mapping: ComponentMapping) -> None:
        if len(self._entries) >= self.maxsize and key not in self._entries:
            # Simple FIFO eviction: drop the oldest insertion.  The cache
            # is a perf aid, not a correctness requirement.
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = dict(mapping)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}

    def register_into(self, registry, **labels: str) -> None:
        """Expose hit/miss/size counters through an obs metrics registry."""
        from repro.obs.metrics import Sample

        base = tuple(sorted(labels.items()))

        def collect():
            yield Sample(
                "repro_compat_cache_hits_total", "counter",
                "Mapping cache hits", base, self.hits,
            )
            yield Sample(
                "repro_compat_cache_misses_total", "counter",
                "Mapping cache misses", base, self.misses,
            )
            yield Sample(
                "repro_compat_cache_size", "gauge",
                "Mappings currently cached", base, len(self._entries),
            )

        registry.register_collector(collect)


#: Process-wide default mapping cache, shared by every instance that does
#: not carry its own (mirrors DEFAULT_CORRESPONDENCES).
DEFAULT_MAPPING_CACHE = MappingCache()


def mapping_cache_key(
    spec_a: Mapping[str, Any],
    spec_b: Mapping[str, Any],
    strategy: str,
    correspondences: Optional["CorrespondenceRegistry"] = None,
    predefined: Optional[ComponentMapping] = None,
) -> Tuple:
    """The memoization key for a structural-mapping computation."""
    registry = (
        correspondences if correspondences is not None else DEFAULT_CORRESPONDENCES
    )
    return (
        spec_fingerprint(spec_a),
        spec_fingerprint(spec_b),
        strategy,
        registry.epoch,
        tuple(sorted(predefined.items())) if predefined is not None else None,
    )


def _value_kind(value: Any) -> str:
    """Coarse value category used by correspondence inference."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "text"
    if isinstance(value, list):
        return "list"
    return "other"


def infer_correspondence(
    type_a: str, type_b: str
) -> Optional[AttributeMapping]:
    """Heuristically derive an attribute correspondence between two types.

    Implements the paper's future-work item (§5): "initialization
    procedures for making complex, hierarchically nested UI objects
    compatible will have to be refined".  Each relevant attribute of
    *type_a* is matched to a distinct attribute of *type_b*, preferring
    (1) an identically-named relevant attribute, then (2) any
    identically-named attribute, then (3) a relevant attribute whose
    default value has the same coarse kind (text/number/bool/list), then
    (4) any same-kind attribute.  Returns ``None`` when some relevant
    attribute cannot be matched — inference refuses to guess across
    kinds.
    """
    cls_a = widget_class(type_a)
    cls_b = widget_class(type_b)
    relevant_b = list(cls_b.ATTRIBUTES.relevant_names())
    all_b = {attr.name: attr for attr in cls_b.ATTRIBUTES}
    used: set = set()
    mapping: AttributeMapping = {}
    for name_a in cls_a.ATTRIBUTES.relevant_names():
        attr_a = cls_a.ATTRIBUTES.get(name_a, type_a)
        kind_a = _value_kind(attr_a.default)
        candidates = []
        if name_a in all_b and name_a in relevant_b:
            candidates.append(name_a)
        if name_a in all_b:
            candidates.append(name_a)
        candidates.extend(
            name_b
            for name_b in relevant_b
            if _value_kind(all_b[name_b].default) == kind_a
        )
        candidates.extend(
            name_b
            for name_b, attr_b in all_b.items()
            if _value_kind(attr_b.default) == kind_a
        )
        choice = next((c for c in candidates if c not in used), None)
        if choice is None:
            return None
        used.add(choice)
        mapping[name_a] = choice
    return mapping


def declare_inferred(
    type_a: str,
    type_b: str,
    registry: Optional[CorrespondenceRegistry] = None,
) -> AttributeMapping:
    """Infer a correspondence and install it (both directions).

    Raises :class:`IncompatibleObjectsError` when inference fails.
    """
    mapping = infer_correspondence(type_a, type_b)
    if mapping is None:
        raise IncompatibleObjectsError(
            type_a, type_b, "no attribute correspondence could be inferred"
        )
    # NB: `registry or DEFAULT` would mis-route an *empty* registry, which
    # is falsy through __len__.
    target = registry if registry is not None else DEFAULT_CORRESPONDENCES
    target.declare(type_a, type_b, mapping)
    return mapping


#: type class -> identity attribute mapping; widget ATTRIBUTES are
#: class-level constants, so this never goes stale for a given class.
_IDENTITY_MAPPINGS: Dict[type, AttributeMapping] = {}


def attribute_mapping(
    type_a: str,
    type_b: str,
    correspondences: Optional[CorrespondenceRegistry] = None,
) -> Optional[AttributeMapping]:
    """How relevant attributes of *type_a* translate to *type_b*.

    Same type -> identity over the relevant attributes.  Different types ->
    the declared correspondence, or ``None`` (incompatible).
    """
    if type_a == type_b:
        cls = widget_class(type_a)
        # Memoized per widget *class* (not name) so re-registering a type
        # name with a different class cannot serve a stale identity map.
        cached = _IDENTITY_MAPPINGS.get(cls)
        if cached is None:
            cached = {name: name for name in cls.ATTRIBUTES.relevant_names()}
            _IDENTITY_MAPPINGS[cls] = cached
        return dict(cached)
    registry = (
        correspondences if correspondences is not None else DEFAULT_CORRESPONDENCES
    )
    return registry.lookup(type_a, type_b)


def directly_compatible(
    type_a: str,
    type_b: str,
    correspondences: Optional[CorrespondenceRegistry] = None,
) -> bool:
    """Primitive-object compatibility (§3.3)."""
    return attribute_mapping(type_a, type_b, correspondences) is not None


@dataclass
class MatchStats:
    """Cost counters of one structural-compatibility computation (E7)."""

    nodes_compared: int = 0
    backtracks: int = 0
    #: Completed matching computations folded in (aggregate use only).
    matches: int = 0

    def bump(self) -> None:
        self.nodes_compared += 1

    def merge(self, other: "MatchStats") -> "MatchStats":
        self.nodes_compared += other.nodes_compared
        self.backtracks += other.backtracks
        self.matches += other.matches or 1
        return self

    def register_into(self, registry, **labels: str) -> None:
        """Expose these counters through an obs metrics registry."""
        from repro.obs.metrics import Sample

        base = tuple(sorted(labels.items()))

        def collect():
            yield Sample(
                "repro_compat_matches_total", "counter",
                "Structural-compatibility computations", base, self.matches,
            )
            yield Sample(
                "repro_compat_nodes_compared_total", "counter",
                "Pairwise node comparisons", base, self.nodes_compared,
            )
            yield Sample(
                "repro_compat_backtracks_total", "counter",
                "Matcher backtracks", base, self.backtracks,
            )

        registry.register_collector(collect)


#: Process-wide aggregate of every matching computation, so enabling
#: observability surfaces compat cost without threading a registry into
#: the matchers.  :func:`structurally_compatible` folds each per-call
#: :class:`MatchStats` in here.
GLOBAL_MATCH_STATS = MatchStats()


@dataclass
class MatchResult:
    """Outcome of a structural compatibility check."""

    mapping: Optional[ComponentMapping]
    stats: MatchStats = field(default_factory=MatchStats)

    @property
    def compatible(self) -> bool:
        return self.mapping is not None


def structurally_compatible(
    spec_a: Mapping[str, Any],
    spec_b: Mapping[str, Any],
    *,
    strategy: str = EXHAUSTIVE,
    correspondences: Optional[CorrespondenceRegistry] = None,
    predefined: Optional[ComponentMapping] = None,
    node_budget: int = 1_000_000,
) -> MatchResult:
    """Find a one-to-one component mapping between two complex objects.

    Returns a :class:`MatchResult` whose ``mapping`` maps every relative
    path of *spec_a*'s tree onto a relative path of *spec_b*'s tree (the
    roots map as ``"" -> ""``), or ``None`` when the objects are not
    s-compatible under the chosen *strategy*.

    *node_budget* bounds the number of pairwise node comparisons; the
    exhaustive matcher raises :class:`IncompatibleObjectsError` when
    exceeded (the paper's "combinatorial explosion").
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown matching strategy {strategy!r}")
    stats = MatchStats()
    if strategy == PREDEFINED:
        if predefined is None:
            raise ValueError("PREDEFINED strategy requires a predefined mapping")
        ok = _verify_predefined(spec_a, spec_b, predefined, correspondences, stats)
        GLOBAL_MATCH_STATS.merge(stats)
        return MatchResult(dict(predefined) if ok else None, stats)
    mapping: ComponentMapping = {}
    matcher = _match_exhaustive if strategy == EXHAUSTIVE else _match_heuristic
    ok = matcher(
        spec_a, spec_b, "", "", mapping, correspondences, stats, node_budget
    )
    GLOBAL_MATCH_STATS.merge(stats)
    return MatchResult(mapping if ok else None, stats)


def ensure_compatible(
    spec_a: Mapping[str, Any],
    spec_b: Mapping[str, Any],
    *,
    strategy: str = EXHAUSTIVE,
    correspondences: Optional[CorrespondenceRegistry] = None,
    predefined: Optional[ComponentMapping] = None,
) -> ComponentMapping:
    """Like :func:`structurally_compatible` but raising on failure."""
    result = structurally_compatible(
        spec_a,
        spec_b,
        strategy=strategy,
        correspondences=correspondences,
        predefined=predefined,
    )
    if result.mapping is None:
        raise IncompatibleObjectsError(
            spec_a.get("name", "?"),
            spec_b.get("name", "?"),
            "objects are not structurally compatible",
        )
    return result.mapping


# ---------------------------------------------------------------------------
# Matchers
# ---------------------------------------------------------------------------

def _children(spec: Mapping[str, Any]) -> List[Mapping[str, Any]]:
    return list(spec.get("children", []))


def _join(prefix: str, name: str) -> str:
    return f"{prefix}/{name}" if prefix else name


def _match_exhaustive(
    spec_a: Mapping[str, Any],
    spec_b: Mapping[str, Any],
    path_a: str,
    path_b: str,
    mapping: ComponentMapping,
    correspondences: Optional[CorrespondenceRegistry],
    stats: MatchStats,
    node_budget: int,
) -> bool:
    """Backtracking search for a full bijection (worst-case factorial)."""
    stats.bump()
    if stats.nodes_compared > node_budget:
        raise IncompatibleObjectsError(
            spec_a.get("name", "?"),
            spec_b.get("name", "?"),
            f"matching exceeded node budget of {node_budget}",
        )
    if not directly_compatible(spec_a["type"], spec_b["type"], correspondences):
        return False
    kids_a, kids_b = _children(spec_a), _children(spec_b)
    if len(kids_a) != len(kids_b):
        return False
    mapping[path_a] = path_b
    if not kids_a:
        return True
    used = [False] * len(kids_b)

    def assign(index: int) -> bool:
        if index == len(kids_a):
            return True
        child_a = kids_a[index]
        for j, child_b in enumerate(kids_b):
            if used[j]:
                continue
            checkpoint = dict(mapping)
            if _match_exhaustive(
                child_a,
                child_b,
                _join(path_a, child_a["name"]),
                _join(path_b, child_b["name"]),
                mapping,
                correspondences,
                stats,
                node_budget,
            ):
                used[j] = True
                if assign(index + 1):
                    return True
                used[j] = False
            stats.backtracks += 1
            mapping.clear()
            mapping.update(checkpoint)
        return False

    if assign(0):
        return True
    del mapping[path_a]
    return False


def _match_heuristic(
    spec_a: Mapping[str, Any],
    spec_b: Mapping[str, Any],
    path_a: str,
    path_b: str,
    mapping: ComponentMapping,
    correspondences: Optional[CorrespondenceRegistry],
    stats: MatchStats,
    node_budget: int,
) -> bool:
    """Greedy matcher: pair children preferring equal names, then equal
    types, in order.  Linear-ish; may miss exotic bijections the exhaustive
    search would find (tests document one such case)."""
    stats.bump()
    if stats.nodes_compared > node_budget:
        raise IncompatibleObjectsError(
            spec_a.get("name", "?"),
            spec_b.get("name", "?"),
            f"matching exceeded node budget of {node_budget}",
        )
    if not directly_compatible(spec_a["type"], spec_b["type"], correspondences):
        return False
    kids_a, kids_b = _children(spec_a), _children(spec_b)
    if len(kids_a) != len(kids_b):
        return False
    mapping[path_a] = path_b
    remaining = list(range(len(kids_b)))

    def pick(child_a: Mapping[str, Any]) -> Optional[int]:
        # First preference: same name and type.
        for j in remaining:
            if (
                kids_b[j]["name"] == child_a["name"]
                and kids_b[j]["type"] == child_a["type"]
            ):
                return j
        # Second: same type.
        for j in remaining:
            if kids_b[j]["type"] == child_a["type"]:
                return j
        # Last: any directly compatible type.
        for j in remaining:
            if directly_compatible(
                child_a["type"], kids_b[j]["type"], correspondences
            ):
                return j
        return None

    for child_a in kids_a:
        j = pick(child_a)
        if j is None:
            return False
        child_b = kids_b[j]
        if not _match_heuristic(
            child_a,
            child_b,
            _join(path_a, child_a["name"]),
            _join(path_b, child_b["name"]),
            mapping,
            correspondences,
            stats,
            node_budget,
        ):
            return False
        remaining.remove(j)
    return True


def _verify_predefined(
    spec_a: Mapping[str, Any],
    spec_b: Mapping[str, Any],
    predefined: ComponentMapping,
    correspondences: Optional[CorrespondenceRegistry],
    stats: MatchStats,
) -> bool:
    """Check a user-supplied mapping: bijective and type-compatible."""
    index_a = _index_by_path(spec_a)
    index_b = _index_by_path(spec_b)
    if set(predefined) != set(index_a):
        return False
    if sorted(predefined.values()) != sorted(index_b):
        return False
    for rel_a, rel_b in predefined.items():
        stats.bump()
        if rel_b not in index_b:
            return False
        if not directly_compatible(
            index_a[rel_a]["type"], index_b[rel_b]["type"], correspondences
        ):
            return False
    return True


def _index_by_path(
    spec: Mapping[str, Any], prefix: str = ""
) -> Dict[str, Mapping[str, Any]]:
    """relative path -> node spec for a whole spec tree."""
    index: Dict[str, Mapping[str, Any]] = {prefix: spec}
    for child in _children(spec):
        index.update(_index_by_path(child, _join(prefix, child["name"])))
    return index


def translate_state(
    source_state: Mapping[str, Mapping[str, Any]],
    source_spec: Mapping[str, Any],
    target_spec: Mapping[str, Any],
    mapping: ComponentMapping,
    correspondences: Optional[CorrespondenceRegistry] = None,
) -> Dict[str, Dict[str, Any]]:
    """Translate a subtree state along a component mapping.

    *source_state* maps source relative paths to relevant-attribute dicts;
    the result maps *target* relative paths to attribute dicts with names
    translated through the per-type attribute correspondences.
    """
    index_a = _index_by_path(source_spec)
    index_b = _index_by_path(target_spec)
    translated: Dict[str, Dict[str, Any]] = {}
    for rel_a, values in source_state.items():
        rel_b = mapping.get(rel_a)
        if rel_b is None or rel_a not in index_a or rel_b not in index_b:
            continue
        attr_map = attribute_mapping(
            index_a[rel_a]["type"], index_b[rel_b]["type"], correspondences
        )
        if attr_map is None:
            continue
        translated[rel_b] = {
            attr_map[name]: value
            for name, value in values.items()
            if name in attr_map
        }
    return translated
