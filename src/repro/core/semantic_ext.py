"""Standard semantic-state extensions for typical applications (§5).

The paper's conclusion names this as the path forward: "Currently, it is
left to the application programmer to extend the initial
synchronization-by-state ... to include such internal states.  However,
this task may be supported by some standard extensions for typical
applications."

This module provides those standard extensions: ready-made *model
bindings* that pair an application-internal data structure with a widget,
register the store/load hook pair automatically, and keep the widget
rendered from the model on both ends of a state copy.

* :class:`ValueModel` — an arbitrary JSON-safe blob behind any widget;
* :class:`ListModel` — a list of records behind a :class:`ListBox`
  (rows travel with the UI state; the receiving side re-renders);
* :class:`DocumentModel` — a text document with metadata (title, author,
  revision) behind a :class:`TextArea`, with revision bumping on edit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.instance import ApplicationInstance
from repro.toolkit.events import VALUE_CHANGED
from repro.toolkit.widget import UIObject
from repro.toolkit.widgets.lists import ListBox
from repro.toolkit.widgets.text import TextArea


class ValueModel:
    """A JSON-safe value bound to a widget as its semantic state.

    The most general binding: whatever the application stores under the
    widget travels with every state copy of that widget (or an enclosing
    complex object).
    """

    def __init__(
        self,
        instance: ApplicationInstance,
        widget: UIObject,
        initial: Any = None,
        *,
        on_load: Optional[Callable[[Any], None]] = None,
    ):
        self.instance = instance
        self.widget = widget
        self._value = initial
        self._on_load = on_load
        instance.semantics.register_widget(widget, self._store, self._load)

    @property
    def value(self) -> Any:
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._value = new_value

    def _store(self) -> Any:
        return self._value

    def _load(self, data: Any) -> None:
        self._value = data
        if self._on_load is not None:
            self._on_load(data)


class ListModel:
    """A list of records behind a :class:`ListBox`.

    The records are the semantic truth; the list box shows
    ``formatter(record)`` per row.  On ``load`` (i.e. after a CopyTo /
    CopyFrom / RemoteCopy delivered new rows) the widget is re-rendered
    locally, so UI state and semantic state can never drift apart.
    """

    def __init__(
        self,
        instance: ApplicationInstance,
        listbox: ListBox,
        rows: Optional[Sequence[Mapping[str, Any]]] = None,
        *,
        formatter: Optional[Callable[[Mapping[str, Any]], str]] = None,
    ):
        self.instance = instance
        self.listbox = listbox
        self._formatter = formatter or (lambda row: " | ".join(
            str(v) for v in row.values()
        ))
        self._rows: List[Dict[str, Any]] = [dict(r) for r in rows or []]
        instance.semantics.register_widget(listbox, self._store, self._load)
        self.render()

    @property
    def rows(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._rows]

    def set_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Replace the model and re-render the list box."""
        self._rows = [dict(r) for r in rows]
        self.render()

    def append(self, row: Mapping[str, Any]) -> None:
        self._rows.append(dict(row))
        self.render()

    def selected_rows(self) -> List[Dict[str, Any]]:
        """The records behind the widget's current selection."""
        return [
            dict(self._rows[i])
            for i in self.listbox.get("selected")
            if 0 <= i < len(self._rows)
        ]

    def render(self) -> None:
        self.listbox.set("items", [self._formatter(r) for r in self._rows])

    def _store(self) -> Any:
        return self._rows

    def _load(self, data: Any) -> None:
        self._rows = [dict(r) for r in data or []]
        self.render()

    def __len__(self) -> int:
        return len(self._rows)


class DocumentModel:
    """A text document with metadata behind a :class:`TextArea`.

    Metadata (title, author, monotonically increasing revision) is the
    internal structure a window-level share would lose (§5: "internal
    structures of text documents, even if they are being displayed in a
    window").  Edits through the text area bump the revision; state
    copies carry both text and metadata.
    """

    def __init__(
        self,
        instance: ApplicationInstance,
        textarea: TextArea,
        *,
        title: str = "",
        author: str = "",
    ):
        self.instance = instance
        self.textarea = textarea
        self.title = title
        self.author = author or instance.user
        self.revision = 0
        instance.semantics.register_widget(textarea, self._store, self._load)
        textarea.add_callback(VALUE_CHANGED, self._on_edit)

    def edit(self, text: str) -> None:
        """Commit new text through the event path (couples propagate)."""
        self.textarea.commit(text, user=self.instance.user)

    @property
    def text(self) -> str:
        return self.textarea.text

    def _on_edit(self, _widget: UIObject, event: Any) -> None:
        self.revision += 1
        if event.user:
            self.author = event.user

    def _store(self) -> Any:
        return {
            "title": self.title,
            "author": self.author,
            "revision": self.revision,
        }

    def _load(self, data: Any) -> None:
        payload = dict(data or {})
        self.title = str(payload.get("title", self.title))
        self.author = str(payload.get("author", self.author))
        incoming = int(payload.get("revision", 0))
        # Never regress: a copy of an older document must not roll the
        # local revision counter backwards.
        self.revision = max(self.revision, incoming)
