"""Synchronization by UI state (§3.1): payload building and application.

The transfer unit is a *state payload* describing one (possibly complex) UI
object:

* ``structure`` — the builder spec of the subtree (types, names, nesting);
* ``state`` — relative path -> relevant attribute values;
* ``semantic`` — relative path -> data produced by the store hooks.

The owner side builds the payload (:func:`build_state_payload`); the
receiver applies it (:func:`apply_state_payload`) under one of three modes:

* :data:`STRICT` — requires structural compatibility; state is translated
  along the component mapping (heterogeneous types use declared attribute
  correspondences) and applied; nothing is created or destroyed.
* :data:`MERGE` — destructive merging for structurally different objects.
* :data:`FLEXIBLE` — flexible matching: shared substructures synchronized,
  differing ones conserved/merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.core import compat
from repro.core.merging import MergeReport, destructive_merge, flexible_match
from repro.core.semantic import SemanticHookRegistry
from repro.errors import IncompatibleObjectsError
from repro.toolkit.builder import to_spec
from repro.toolkit.tree import apply_subtree_state, subtree_state
from repro.toolkit.widget import UIObject

STRICT = "strict"
MERGE = "merge"
FLEXIBLE = "flexible"
MODES = (STRICT, MERGE, FLEXIBLE)

#: Matching strategy used by STRICT mode: the cheap heuristic first, the
#: exhaustive search only as a fallback (§3.3's advice to avoid
#: combinatorial explosion on the common path).
AUTO = "auto"


def build_state_payload(
    widget: UIObject,
    semantics: Optional[SemanticHookRegistry] = None,
    *,
    include_structure: bool = True,
) -> Dict[str, Any]:
    """Serialize *widget*'s subtree for a state transfer.

    Invoked in the dominating instance; runs the store hooks (§3.1
    "Synchronizing semantic state").
    """
    payload: Dict[str, Any] = {
        "state": subtree_state(widget, relevant_only=True),
    }
    if include_structure:
        payload["structure"] = to_spec(widget, full_state=False)
    if semantics is not None:
        stored = semantics.store_subtree(widget)
        if stored:
            payload["semantic"] = stored
    return payload


@dataclass
class ApplyReport:
    """Outcome of applying a state payload to a local object."""

    mode: str
    applied_paths: List[str] = field(default_factory=list)
    merge: Optional[MergeReport] = None
    mapping_size: int = 0
    semantic_loaded: List[str] = field(default_factory=list)
    old_state: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: The resolved component mapping (STRICT with structure only); the
    #: delta sync protocol caches it for translating later delta payloads
    #: without re-running the structural matcher.
    mapping: Optional[compat.ComponentMapping] = None


def apply_state_payload(
    widget: UIObject,
    payload: Mapping[str, Any],
    *,
    mode: str = STRICT,
    strategy: str = AUTO,
    semantics: Optional[SemanticHookRegistry] = None,
    correspondences: Optional[compat.CorrespondenceRegistry] = None,
    predefined: Optional[compat.ComponentMapping] = None,
) -> ApplyReport:
    """Apply a received state payload onto *widget* (the dominated object).

    Returns an :class:`ApplyReport` whose ``old_state`` carries the
    overwritten relevant attributes — the caller ships it to the server's
    historical UI states (§2.2).
    """
    if mode not in MODES:
        raise ValueError(f"unknown synchronization mode {mode!r}")
    report = ApplyReport(mode=mode)
    report.old_state = subtree_state(widget, relevant_only=True)
    source_state: Mapping[str, Mapping[str, Any]] = payload.get("state", {})
    source_spec = payload.get("structure")

    if mode == STRICT:
        if source_spec is None:
            # Structure-less payload: positional application by identical
            # relative paths (homogeneous fast path).
            report.applied_paths = apply_subtree_state(widget, source_state)
        else:
            mapping = _resolve_mapping(
                source_spec, widget, strategy, correspondences, predefined
            )
            report.mapping_size = len(mapping)
            report.mapping = dict(mapping)
            translated = compat.translate_state(
                source_state,
                source_spec,
                to_spec(widget, full_state=False),
                mapping,
                correspondences,
            )
            report.applied_paths = apply_subtree_state(widget, translated)
    elif mode == MERGE:
        if source_spec is None:
            raise IncompatibleObjectsError(
                "<payload>", widget.pathname, "merge mode requires structure"
            )
        report.merge = destructive_merge(widget, source_spec, source_state)
        report.applied_paths = list(report.merge.updated)
    else:  # FLEXIBLE
        if source_spec is None:
            raise IncompatibleObjectsError(
                "<payload>", widget.pathname, "flexible mode requires structure"
            )
        report.merge = flexible_match(widget, source_spec, source_state)
        report.applied_paths = list(report.merge.updated)

    if semantics is not None and "semantic" in payload:
        report.semantic_loaded = semantics.load_subtree(
            widget, dict(payload["semantic"])
        )
    return report


def _resolve_mapping(
    source_spec: Mapping[str, Any],
    widget: UIObject,
    strategy: str,
    correspondences: Optional[compat.CorrespondenceRegistry],
    predefined: Optional[compat.ComponentMapping],
    cache: Optional[compat.MappingCache] = None,
) -> compat.ComponentMapping:
    target_spec = to_spec(widget, full_state=False)
    mapping_cache = cache if cache is not None else compat.DEFAULT_MAPPING_CACHE
    key = compat.mapping_cache_key(
        source_spec, target_spec, strategy, correspondences, predefined
    )
    cached = mapping_cache.lookup(key)
    if cached is not None:
        return cached
    mapping = _compute_mapping(
        source_spec, target_spec, strategy, correspondences, predefined
    )
    mapping_cache.store(key, mapping)
    return mapping


def _compute_mapping(
    source_spec: Mapping[str, Any],
    target_spec: Mapping[str, Any],
    strategy: str,
    correspondences: Optional[compat.CorrespondenceRegistry],
    predefined: Optional[compat.ComponentMapping],
) -> compat.ComponentMapping:
    if predefined is not None:
        return compat.ensure_compatible(
            source_spec,
            target_spec,
            strategy=compat.PREDEFINED,
            correspondences=correspondences,
            predefined=predefined,
        )
    if strategy == AUTO:
        result = compat.structurally_compatible(
            source_spec,
            target_spec,
            strategy=compat.HEURISTIC,
            correspondences=correspondences,
        )
        if result.mapping is not None:
            return result.mapping
        return compat.ensure_compatible(
            source_spec,
            target_spec,
            strategy=compat.EXHAUSTIVE,
            correspondences=correspondences,
        )
    return compat.ensure_compatible(
        source_spec,
        target_spec,
        strategy=strategy,
        correspondences=correspondences,
    )
