"""Synchronization by multiple execution (§3.2).

This module implements the paper's algorithm verbatim (client side):

    Assume event e to occur on UI object O.  Let CO(o) be the set of the UI
    objects that have been coupled with O.
      - lock every object of the group in the server (all-or-nothing);
      - if locking failed: undo locking and *undo the syntactic built-in
        feedback* of e;
      - else: for each coupled O': simulate the feedback of e and execute
        the callbacks of e on O';
      - release all locks, re-enable the objects.

The server performs the all-or-nothing group acquisition atomically (see
:meth:`repro.server.locks.LockTable.acquire_all`, which mirrors the
pseudo-code's per-object loop with undo), grants or denies the floor, and
after the event broadcast releases the group.

On the initiating instance the flow is:

1. the widget applies its built-in feedback immediately (the user sees the
   local echo, as in any direct-manipulation UI);
2. the floor is requested for ``CO(o)``;
3. denied -> the feedback is rolled back and no callbacks run;
4. granted -> local callbacks execute, the event is sent to the server,
   which broadcasts it to every other instance owning coupled objects and
   releases the floor.

Receiving instances execute :func:`apply_remote_event`: each local coupled
object is disabled (floor-locked), the event is re-executed on it —
"simulate the feedback of e; execute callbacks of the event e on object O'"
— and the object is re-enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.net import kinds
from repro.net.message import Message
from repro.obs import NULL_OBS
from repro.obs import tracing as obs_tracing
from repro.server.couples import GlobalId, gid_from_wire, gid_to_wire
from repro.toolkit.events import Event
from repro.toolkit.widget import UIObject, UndoRecord


@dataclass(frozen=True)
class FloorGrant:
    """A granted floor: the lock token and the locked group."""

    token: int
    group: Tuple[GlobalId, ...]


@dataclass
class ExecutionResult:
    """Outcome of one local event under multiple execution."""

    executed: bool
    lock_denied: bool = False
    group: Tuple[GlobalId, ...] = ()
    conflicts: Tuple[GlobalId, ...] = ()
    local_only: bool = False


def request_floor(
    instance: Any,
    source: GlobalId,
    timeout: float,
    *,
    trace: Optional[Tuple[str, str]] = None,
) -> Optional[FloorGrant]:
    """Ask the server to lock the couple group of *source*.

    Returns the grant, or ``None`` when the floor was denied or the request
    timed out (a timeout is treated as a denial: the caller rolls back, the
    server's floor record — if the grant raced the timeout — is reclaimed
    by the eventual unlock of a later floor or by instance cleanup).

    *trace* is the caller's span context; the blocking round trip is
    recorded as a ``client.lock_wait`` span and the context travels on
    the LOCK_REQUEST so the server's handling joins the same trace.
    """
    token = instance.next_token()
    obs = getattr(instance, "obs", NULL_OBS)
    span = None
    if trace is not None and obs.tracing:
        span = obs.spans.start(
            obs_tracing.CLIENT_LOCK_WAIT,
            trace_id=trace[0],
            parent_id=trace[1],
            endpoint=instance.instance_id,
        )
        trace = (trace[0], span.span_id)
    request = Message(
        kind=kinds.LOCK_REQUEST,
        sender=instance.instance_id,
        payload={"source": gid_to_wire(source), "token": token},
        trace=trace,
    )
    reply = instance.request(request, timeout=timeout)
    if span is not None:
        granted = bool(
            reply is not None
            and reply.kind == kinds.LOCK_REPLY
            and reply.payload.get("granted", False)
        )
        obs.spans.finish(span, granted=granted)
    if reply is None or reply.kind != kinds.LOCK_REPLY:
        return None
    if not reply.payload.get("granted", False):
        return None
    group = tuple(gid_from_wire(g) for g in reply.payload.get("group", ()))
    return FloorGrant(token=token, group=group)


def release_floor(instance: Any, grant: FloorGrant) -> None:
    """Explicitly release a floor obtained via :func:`request_floor`."""
    instance.send(
        Message(
            kind=kinds.UNLOCK,
            sender=instance.instance_id,
            payload={
                "token": grant.token,
                "objects": [gid_to_wire(g) for g in grant.group],
            },
        )
    )


def run_multiple_execution(
    instance: Any,
    widget: UIObject,
    event: Event,
    undo: UndoRecord,
    *,
    timeout: float,
) -> ExecutionResult:
    """Execute the paper's multiple-execution algorithm for a local event.

    *undo* is the built-in-feedback rollback record captured when the
    widget echoed the user action.
    """
    source: GlobalId = (instance.instance_id, widget.pathname)
    obs = getattr(instance, "obs", NULL_OBS)
    root = None
    trace = None
    if obs.tracing:
        # Root span of the whole synchronization: user action enters the
        # toolkit here, and the trace context rides every message.
        root = obs.spans.start(
            obs_tracing.CLIENT_EMIT,
            endpoint=instance.instance_id,
            event=event.type,
            source=widget.pathname,
        )
        trace = (root.trace_id, root.span_id)
    grant = request_floor(instance, source, timeout, trace=trace)
    if grant is None:
        # "undo syntactic built-in feedback of the event e" (§3.2)
        undo.rollback()
        instance.stats["lock_denials"] += 1
        if root is not None:
            obs.spans.finish(root, outcome="lock_denied")
        return ExecutionResult(executed=False, lock_denied=True)

    # Disable the locally owned members of the group while the floor is
    # held ("Actions on locked objects are disabled").
    local_members = _local_widgets(instance, grant.group, exclude=widget.pathname)
    for member in local_members:
        member.floor_lock()
    try:
        # Execute callbacks on the source object (feedback already echoed).
        widget.run_callbacks(event)
        # Ship the event; the server broadcasts it to every other owning
        # instance and releases the floor afterwards.
        instance.send(
            Message(
                kind=kinds.EVENT,
                sender=instance.instance_id,
                payload={
                    "event": event.to_wire(),
                    "token": grant.token,
                    "release": True,
                },
                trace=trace,
            )
        )
        # The group may include other local objects (two objects coupled
        # "within the same application instance", §3.3) — the server's
        # broadcast deliberately skips the sending instance, so re-execute
        # on local members here.
        for member in local_members:
            _reexecute(member, event)
    finally:
        for member in local_members:
            member.floor_unlock()
    instance.stats["events_coupled"] += 1
    if root is not None:
        obs.spans.finish(root, outcome="executed")
    return ExecutionResult(executed=True, group=grant.group)


def apply_remote_event(
    instance: Any,
    payload: Mapping[str, Any],
    *,
    trace: Optional[Tuple[str, str]] = None,
) -> int:
    """Re-execute a broadcast event on this instance's coupled objects.

    Returns the number of objects the event was executed on (objects that
    disappeared since the broadcast are skipped — their decoupling is
    already in flight).

    *trace* is the EVENT_BROADCAST's trace context: the re-execution is
    recorded as a ``remote.apply`` span and the EVENT_ACK carries the
    context back so the server's floor release joins the trace.
    """
    obs = getattr(instance, "obs", NULL_OBS)
    span = None
    if trace is not None and obs.tracing:
        span = obs.spans.start(
            obs_tracing.REMOTE_APPLY,
            trace_id=trace[0],
            parent_id=trace[1],
            endpoint=instance.instance_id,
        )
        trace = (trace[0], span.span_id)
    event = Event.from_wire(dict(payload["event"]))
    if not instance.accept_remote_event(event):
        # Duplicate delivery (at-least-once transport): the event was
        # already executed here.  Still acknowledge, so a floor waiting on
        # this receiver can never wedge on a duplicate.
        _ack(instance, payload, trace=trace)
        if span is not None:
            obs.spans.finish(span, duplicate=True)
        return 0
    executed = 0
    for path in payload.get("targets", ()):
        widget = instance.find_widget(path)
        if widget is None or widget.destroyed:
            continue
        widget.floor_lock()
        try:
            _reexecute(widget, event)
            executed += 1
        finally:
            widget.floor_unlock()
    instance.stats["events_remote"] += executed
    instance.trace_remote_event(event)
    # Confirm completion so the server can release the floor — the group
    # stays locked "until the processing of this event is completed".
    _ack(instance, payload, trace=trace)
    if span is not None:
        obs.spans.finish(span, executed=executed)
    return executed


def _ack(
    instance: Any,
    payload: Mapping[str, Any],
    *,
    trace: Optional[Tuple[str, str]] = None,
) -> None:
    owner = payload.get("owner")
    if owner is not None:
        instance.send(
            Message(
                kind=kinds.EVENT_ACK,
                sender=instance.instance_id,
                payload={"owner": [str(owner[0]), int(owner[1])]},
                trace=trace,
            )
        )


def _reexecute(widget: UIObject, event: Event) -> None:
    """Simulate feedback and run callbacks of *event* on a coupled object."""
    local_event = event.retargeted(
        widget.pathname, getattr(widget.runtime, "instance_id", "")
    )
    widget.apply_feedback(local_event)
    widget.run_callbacks(local_event)


def _local_widgets(
    instance: Any, group: Sequence[GlobalId], *, exclude: str
) -> List[UIObject]:
    """The group members owned by *instance*, resolved to live widgets."""
    members: List[UIObject] = []
    for gid in group:
        if gid[0] != instance.instance_id or gid[1] == exclude:
            continue
        widget = instance.find_widget(gid[1])
        if widget is not None and not widget.destroyed:
            members.append(widget)
    return members
