"""The application-instance runtime: a COSOFT client.

An :class:`ApplicationInstance` is one replica in the fully replicated
architecture (Figure 4): it owns a widget tree (its user interface), its
own application functionality (callbacks and semantic data), a connection
to the central server, and a local replica of the coupling information.

Converting a single-user application into a multi-user one takes exactly
the paper's promise — "no more programming than inserting a statement to
register the application with the server":

    inst = ApplicationInstance("editor-1", user="alice").connect(network)
    inst.add_root(shell)        # the existing single-user widget tree
    inst.register()

From then on every ``widget.fire(...)`` is routed through the
multiple-execution algorithm whenever the widget is coupled, and stays
purely local otherwise.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import Counter
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core import action_sync, coupling, state_sync
from repro.core.action_sync import ExecutionResult, FloorGrant
from repro.core.commands import CommandRegistry
from repro.core.compat import (
    ComponentMapping,
    CorrespondenceRegistry,
    spec_fingerprint,
    translate_state,
)
from repro.core.semantic import SemanticHookRegistry
from repro.core.state_sync import ApplyReport, STRICT
from repro.errors import (
    NotRegisteredError,
    PathError,
    ReproError,
    ServerError,
)
from repro.net import kinds
from repro.net.aio import AioClientTransport
from repro.net.memory import MemoryNetwork
from repro.net.message import Message
from repro.net.tcp import TcpClientTransport
from repro.net.transport import Transport
from repro.obs import NULL_OBS
from repro.server.couples import CoupleTable, GlobalId, gid_from_wire, gid_to_wire
from repro.server.permissions import PermissionRule
from repro.server.registry import RegistrationRecord
from repro.toolkit.builder import to_spec
from repro.toolkit.events import Event, EventTrace
from repro.toolkit.tree import (
    apply_subtree_state,
    subtree_state,
    subtree_state_since,
)
from repro.toolkit.widget import UIObject, state_clock

WidgetRef = Union[UIObject, str]


def _blob_fingerprint(blob: Any) -> str:
    """Fingerprint an arbitrary (repr-stable) payload blob.

    Used to skip re-shipping an unchanged semantic blob in delta pushes;
    both sides of a comparison are produced by the same process, so repr
    stability within one run is all that is required.
    """
    return hashlib.sha1(repr(blob).encode("utf-8")).hexdigest()


class ApplicationInstance:
    """One application instance in the COSOFT architecture.

    Parameters
    ----------
    instance_id:
        Globally unique identifier (the first half of the paper's
        ``<instance-id, pathname>`` object ids).
    user:
        The participant operating this instance (permissions key on it).
    app_type:
        Free-form application type tag; heterogeneous coupling means
        coupling instances with different ``app_type``.
    correspondences:
        Type-correspondence registry for heterogeneous object coupling;
        defaults to the process-wide registry.
    lock_timeout / request_timeout:
        How long blocking operations wait for server replies (simulated
        seconds on the memory network, wall seconds on TCP).
    """

    def __init__(
        self,
        instance_id: str,
        user: str,
        *,
        app_type: str = "",
        host: str = "localhost",
        correspondences: Optional[CorrespondenceRegistry] = None,
        lock_timeout: float = 5.0,
        request_timeout: float = 5.0,
        replica_fast_path: bool = True,
        delta_sync: bool = True,
        observability=None,
        trace_maxlen: Optional[int] = None,
    ):
        if not instance_id or instance_id in ("server", "router"):
            # Both endpoint names are reserved: "server" is the central
            # controller, "router" the cluster front-end's internal sender.
            raise ValueError(f"invalid instance id {instance_id!r}")
        self.instance_id = instance_id
        self.user = user
        self.app_type = app_type
        self.host = host
        self.correspondences = correspondences
        self.lock_timeout = lock_timeout
        self.request_timeout = request_timeout
        #: Use the local replica of the coupling information to keep
        #: uncoupled interaction fully local (§3.2 "to be completely
        #: available locally").  ``False`` forces every event through the
        #: server — kept for the ablation benchmark quantifying what the
        #: replica buys.
        self.replica_fast_path = replica_fast_path
        #: Ship only changed attributes on repeat CopyTo transfers to the
        #: same target (full snapshots remain the fallback for first
        #: contact, MERGE/FLEXIBLE modes and continuity loss).
        self.delta_sync = delta_sync

        self._roots: Dict[str, UIObject] = {}
        #: Local replica of the server's couple table (§3.2).
        self.replica = CoupleTable()
        self.roster: Dict[str, RegistrationRecord] = {}
        self.semantics = SemanticHookRegistry()
        self.commands = CommandRegistry()
        self.trace = (
            EventTrace(maxlen=trace_maxlen)
            if trace_maxlen is not None
            else EventTrace()
        )
        #: Observability hooks shared with the deployment (the disabled
        #: stand-in unless the Session wires a live one in).
        self.obs = observability if observability is not None else NULL_OBS
        self.stats: Counter = Counter()
        self.registered = False
        self.last_execution: Optional[ExecutionResult] = None

        self._transport: Optional[Transport] = None
        self._replies: Dict[int, Message] = {}
        #: msg_ids whose request timed out: a late reply is dropped instead
        #: of accumulating forever in ``_replies``.
        self._abandoned: set = set()
        #: highest event seq executed per originating instance (dedup of
        #: at-least-once broadcast deliveries).
        self._last_event_seq: Dict[str, int] = {}
        #: Delta sync sender cache: (local pathname, target gid) -> the last
        #: *acknowledged* transfer (seq, state-clock baseline, structure and
        #: semantic fingerprints).  Entries are dropped on any failed or
        #: non-STRICT transfer so the next push falls back to a full
        #: snapshot.
        self._delta_out: Dict[Tuple[str, GlobalId], Dict[str, Any]] = {}
        #: Delta sync receiver cache: (source gid, local pathname) -> the
        #: last applied transfer (seq, fingerprints, source spec and the
        #: resolved component mapping for translating deltas).
        self._delta_in: Dict[Tuple[GlobalId, str], Dict[str, Any]] = {}
        self._tokens = itertools.count(1)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def connect(self, network: MemoryNetwork) -> "ApplicationInstance":
        """Attach to a simulated network; returns self for chaining."""
        self.bind(network.attach(self.instance_id, self.handle_message))
        return self

    def connect_tcp(
        self, host: str, port: int, *, codec: object = "json"
    ) -> "ApplicationInstance":
        """Connect to a TCP server; returns self for chaining.

        *codec* names the outbound wire codec (``"json"``/``"binary"``);
        the server detects it per connection and answers in kind.
        """
        self.bind(
            TcpClientTransport(
                self.instance_id, self.handle_message, host, port, codec=codec
            )
        )
        return self

    def connect_aio(
        self, host: str, port: int, *, loop=None, codec: object = "json"
    ) -> "ApplicationInstance":
        """Connect through a shared event loop; returns self for chaining.

        With ``loop=None`` the transport starts a private loop thread;
        passing a running loop (e.g. the aio runtime's) lets any number
        of instances share one thread for all their connections.  *codec*
        selects the outbound wire codec, as in :meth:`connect_tcp`.
        """
        self.bind(
            AioClientTransport(
                self.instance_id,
                self.handle_message,
                host,
                port,
                loop=loop,
                codec=codec,
            )
        )
        return self

    def bind(self, transport: Transport) -> None:
        self._transport = transport

    @property
    def transport(self) -> Optional[Transport]:
        return self._transport

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def register(self) -> None:
        """Join the session: the paper's one-statement multi-user upgrade."""
        reply = self.request(
            Message(
                kind=kinds.REGISTER,
                sender=self.instance_id,
                payload={
                    "user": self.user,
                    "host": self.host,
                    "app_type": self.app_type,
                },
            )
        )
        if reply is None:
            raise ServerError("registration timed out")
        self.registered = True
        self._apply_roster(reply.payload.get("roster", []))
        coupling.bootstrap_replica(self.replica, reply.payload.get("couples"))

    def unregister(self) -> None:
        """Leave the session; the server auto-decouples our objects."""
        if not self.registered:
            return
        self.send(Message(kind=kinds.UNREGISTER, sender=self.instance_id))
        self.registered = False
        self.replica.clear()
        self._delta_out.clear()
        self._delta_in.clear()

    def close(self) -> None:
        """Unregister and release the transport."""
        transport = self._transport
        if transport is None:
            return
        try:
            if self.registered and not transport.closed:
                self.unregister()
        finally:
            transport.close()
            self._transport = None

    # ------------------------------------------------------------------
    # Widget trees
    # ------------------------------------------------------------------

    def add_root(self, widget: UIObject) -> UIObject:
        """Adopt a widget tree; its events now route through this runtime."""
        if widget.parent is not None:
            raise ValueError("only root widgets can be added to an instance")
        if widget.name in self._roots:
            raise ValueError(f"root {widget.name!r} already added")
        self._roots[widget.name] = widget
        widget.attach_runtime(self)
        return widget

    def remove_root(self, widget: UIObject) -> None:
        if self._roots.get(widget.name) is widget:
            del self._roots[widget.name]

    def roots(self) -> Tuple[UIObject, ...]:
        return tuple(self._roots.values())

    def find_widget(self, pathname: str) -> Optional[UIObject]:
        """Resolve an absolute pathname to a live widget, or ``None``."""
        parts = [p for p in pathname.split("/") if p]
        if not parts:
            return None
        root = self._roots.get(parts[0])
        if root is None:
            return None
        try:
            return root.find(pathname)
        except PathError:
            return None

    def widget(self, pathname: str) -> UIObject:
        """Like :meth:`find_widget` but raising :class:`PathError`."""
        found = self.find_widget(pathname)
        if found is None:
            raise PathError(pathname)
        return found

    def gid(self, ref: WidgetRef) -> GlobalId:
        """The global id ``<instance-id, pathname>`` of a local widget."""
        pathname = ref.pathname if isinstance(ref, UIObject) else str(ref)
        return (self.instance_id, pathname)

    # ------------------------------------------------------------------
    # Coupling (§3.2, §3.3)
    # ------------------------------------------------------------------

    def couple(self, source: WidgetRef, target: GlobalId) -> None:
        """Create a couple link from a local object to *target*."""
        self._couple_request(kinds.COUPLE, self.gid(source), target)

    def decouple(self, source: WidgetRef, target: GlobalId) -> None:
        """Remove the couple link between a local object and *target*."""
        self._couple_request(kinds.DECOUPLE, self.gid(source), target)

    def decouple_object(self, source: WidgetRef) -> None:
        """Remove every couple link touching a local object (and its
        subtree) — leaving a group entirely, the same operation the
        automatic decoupling on destroy performs (§3.2)."""
        self._require_connected()
        reply = self.request(
            Message(
                kind=kinds.DECOUPLE,
                sender=self.instance_id,
                payload={"object": gid_to_wire(self.gid(source))},
            )
        )
        if reply is None:
            raise ServerError("decouple_object timed out")

    def remote_couple(self, source: GlobalId, target: GlobalId) -> None:
        """Couple two objects in (possibly) other instances (§3.3):
        "allow a third application instance to couple objects in remote
        instances"."""
        self._couple_request(kinds.REMOTE_COUPLE, source, target)

    def remote_decouple(self, source: GlobalId, target: GlobalId) -> None:
        self._couple_request(kinds.REMOTE_DECOUPLE, source, target)

    def _couple_request(self, kind: str, source: GlobalId, target: GlobalId) -> None:
        self._require_connected()
        reply = self.request(
            Message(
                kind=kind,
                sender=self.instance_id,
                payload={
                    "source": gid_to_wire(source),
                    "target": gid_to_wire(target),
                },
            )
        )
        if reply is None:
            raise ServerError(f"{kind} request timed out")

    def coupled_objects(self, ref: WidgetRef) -> Tuple[GlobalId, ...]:
        """The paper's ``CO(o)`` for a local object, from the replica."""
        return tuple(sorted(self.replica.coupled_objects(self.gid(ref))))

    def is_coupled(self, ref: WidgetRef) -> bool:
        return self.replica.is_coupled(self.gid(ref))

    # ------------------------------------------------------------------
    # Synchronization by UI state (§3.1)
    # ------------------------------------------------------------------

    def fetch_state(self, source: GlobalId) -> Dict[str, Any]:
        """Fetch a remote object's state payload *without* applying it.

        Returns the raw payload (``structure``, ``state`` and — if the
        owner registered hooks — ``semantic``).  Used for inspection UIs
        such as the §4 coupling control panel, which shows "a (potentially
        simplified) graphical representation of the student's environment".
        """
        reply = self.request(
            Message(
                kind=kinds.FETCH_STATE,
                sender=self.instance_id,
                payload={"object": gid_to_wire(source)},
            )
        )
        if reply is None:
            raise ServerError("fetch_state timed out")
        return dict(reply.payload)

    def copy_from(
        self,
        local: WidgetRef,
        source: GlobalId,
        *,
        mode: str = STRICT,
        strategy: str = state_sync.AUTO,
        predefined: Optional[ComponentMapping] = None,
    ) -> ApplyReport:
        """Active synchronization: pull *source*'s state onto a local object.

        "With the active synchronization (implemented as a function
        CopyFrom) ... an application actively requests the state of UI
        objects in other instances, and updates its own state" (§3.1).
        """
        widget = self._resolve_local(local)
        reply = self.request(
            Message(
                kind=kinds.FETCH_STATE,
                sender=self.instance_id,
                payload={"object": gid_to_wire(source)},
            )
        )
        if reply is None:
            raise ServerError("copy_from timed out")
        report = state_sync.apply_state_payload(
            widget,
            reply.payload,
            mode=mode,
            strategy=strategy,
            semantics=self.semantics,
            correspondences=self.correspondences,
            predefined=predefined,
        )
        self._push_history(widget, report.old_state, reason="copy_from")
        self.stats["states_applied"] += 1
        return report

    def copy_to(
        self,
        local: WidgetRef,
        target: GlobalId,
        *,
        mode: str = STRICT,
        predefined: Optional[ComponentMapping] = None,
    ) -> None:
        """Passive synchronization: push a local object's state at *target*.

        "The passive synchronization (implemented as a function CopyTo)
        indicates a scenario in which one person lets another person see
        his or her work" (§3.1).

        With :attr:`delta_sync`, repeat STRICT pushes to the same target
        ship only the attributes written since the last acknowledged
        transfer (no structure, no unchanged state); the receiver detects
        continuity loss via sequence/fingerprint checks and requests a
        full resync.
        """
        widget = self._resolve_local(local)
        key = (widget.pathname, target)
        payload, commit = self._build_push_payload(widget, target, mode, predefined)
        try:
            reply = self.request(
                Message(
                    kind=kinds.PUSH_STATE, sender=self.instance_id, payload=payload
                )
            )
        except ServerError:
            self._delta_out.pop(key, None)
            raise
        if reply is None:
            # Unacknowledged: the delta baseline would be a guess, so drop
            # it — the next push sends a full snapshot.
            self._delta_out.pop(key, None)
            raise ServerError("copy_to timed out")
        if commit is not None:
            self._delta_out[key] = commit

    def _build_push_payload(
        self,
        widget: UIObject,
        target: GlobalId,
        mode: str,
        predefined: Optional[ComponentMapping],
    ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
        """Build a PUSH_STATE payload, delta-encoded when safe.

        Returns ``(payload, commit)`` where *commit* is the sender-cache
        entry to install once the transfer is acknowledged (``None`` when
        the transfer is outside the delta protocol entirely).
        """
        key = (widget.pathname, target)
        if not self.delta_sync or mode != STRICT or predefined is not None:
            # MERGE/FLEXIBLE rewrite structure, predefined mappings bypass
            # the cached-mapping path: full snapshot, and invalidate any
            # delta continuity with this target.
            self._delta_out.pop(key, None)
            payload = state_sync.build_state_payload(widget, self.semantics)
            payload["target"] = gid_to_wire(target)
            payload["mode"] = mode
            payload["source"] = gid_to_wire(self.gid(widget))
            if predefined is not None:
                payload["predefined"] = dict(predefined)
            return payload, None
        # Baseline *before* reading state: attributes written between the
        # snapshot and the read are shipped now and again in the next
        # delta — at-least-once per attribute, never lost.
        baseline = state_clock()
        fp = spec_fingerprint(to_spec(widget, full_state=False))
        stored = self.semantics.store_subtree(widget)
        sem_fp = _blob_fingerprint(stored) if stored else None
        entry = self._delta_out.get(key)
        payload: Dict[str, Any] = {
            "target": gid_to_wire(target),
            "mode": mode,
            "source": gid_to_wire(self.gid(widget)),
        }
        if entry is not None and entry["fp"] == fp:
            seq = entry["seq"] + 1
            payload["state"] = subtree_state_since(widget, entry["baseline"])
            payload["sync"] = {
                "delta": True,
                "seq": seq,
                "base": entry["seq"],
                "fp": fp,
            }
            if stored and sem_fp != entry.get("sem_fp"):
                payload["semantic"] = stored
            self.stats["delta_pushes"] += 1
        else:
            seq = 1
            payload["state"] = subtree_state(widget, relevant_only=True)
            payload["structure"] = to_spec(widget, full_state=False)
            payload["sync"] = {"delta": False, "seq": seq, "fp": fp}
            if stored:
                payload["semantic"] = stored
            self.stats["full_pushes"] += 1
        commit = {"seq": seq, "baseline": baseline, "fp": fp, "sem_fp": sem_fp}
        return payload, commit

    def remote_copy(
        self, source: GlobalId, target: GlobalId, *, mode: str = STRICT
    ) -> None:
        """Third-party copy: "remotely copy complex UI objects from the
        first application instance ... into a third application instance"
        (§3.1, the RemoteCopy primitive)."""
        reply = self.request(
            Message(
                kind=kinds.REMOTE_COPY,
                sender=self.instance_id,
                payload={
                    "source": gid_to_wire(source),
                    "target": gid_to_wire(target),
                    "mode": mode,
                },
            )
        )
        if reply is None:
            raise ServerError("remote_copy timed out")

    def undo(self, local: WidgetRef) -> bool:
        """Restore the most recent overwritten UI state of a local object."""
        return self._history_restore(local, redo=False)

    def redo(self, local: WidgetRef) -> bool:
        """Inverse of :meth:`undo`."""
        return self._history_restore(local, redo=True)

    def _history_restore(self, local: WidgetRef, *, redo: bool) -> bool:
        widget = self._resolve_local(local)
        current = subtree_state(widget, relevant_only=True)
        try:
            reply = self.request(
                Message(
                    kind=kinds.UNDO_REQUEST,
                    sender=self.instance_id,
                    payload={
                        "object": gid_to_wire(self.gid(widget)),
                        "current_state": current,
                        "redo": redo,
                    },
                )
            )
        except ServerError:
            return False
        if reply is None:
            return False
        state = reply.payload.get("state", {})
        apply_subtree_state(widget, state)
        return True

    def _push_history(
        self, widget: UIObject, old_state: Mapping[str, Any], reason: str
    ) -> None:
        if not self.registered:
            return
        self.send(
            Message(
                kind=kinds.HISTORY_PUSH,
                sender=self.instance_id,
                payload={
                    "object": gid_to_wire(self.gid(widget)),
                    "state": dict(old_state),
                    "reason": reason,
                    "user": self.user,
                },
            )
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def export_ui(self) -> Dict[str, Any]:
        """Serialize every root widget tree (structure + full state).

        The result is JSON-safe; :meth:`import_ui` reconstructs the trees
        in a fresh instance — e.g. to persist a workspace across runs or
        to seed a test fixture from a live session.
        """
        from repro.toolkit.builder import to_spec

        return {
            "roots": [
                to_spec(root, full_state=True) for root in self.roots()
            ],
        }

    def import_ui(self, exported: Mapping[str, Any]) -> List[UIObject]:
        """Rebuild previously exported widget trees as roots of this
        instance.  Root names must not collide with existing roots."""
        from repro.toolkit.builder import build

        added: List[UIObject] = []
        for spec in exported.get("roots", []):
            added.append(self.add_root(build(spec)))
        return added

    # ------------------------------------------------------------------
    # CoSendCommand (§3.4)
    # ------------------------------------------------------------------

    def send_command(
        self,
        command: str,
        data: Any = None,
        *,
        targets: Optional[List[str]] = None,
        want_reply: bool = False,
        timeout: Optional[float] = None,
    ) -> Optional[Any]:
        """Send an application-defined command through the server.

        With ``want_reply`` the call blocks for the first COMMAND_REPLY and
        returns its data (sensible with a single target).
        """
        self._require_connected()
        message = Message(
            kind=kinds.COMMAND,
            sender=self.instance_id,
            payload={
                "command": command,
                "data": data,
                "targets": list(targets or []),
                "want_reply": want_reply,
            },
        )
        if not want_reply:
            self.send(message)
            return None
        reply = self.request(message, timeout=timeout)
        if reply is None:
            raise ServerError(f"command {command!r} got no reply")
        return reply.payload.get("data")

    def on_command(self, command: str, handler: Any) -> None:
        """Register the receiver-side function interpreting *command*."""
        self.commands.register(command, handler)

    # ------------------------------------------------------------------
    # Permissions
    # ------------------------------------------------------------------

    def set_permission(self, rule: PermissionRule, *, action: str = "add") -> None:
        reply = self.request(
            Message(
                kind=kinds.PERMISSION_SET,
                sender=self.instance_id,
                payload={"rule": rule.to_wire(), "action": action},
            )
        )
        if reply is None:
            raise ServerError("permission_set timed out")

    # ------------------------------------------------------------------
    # Floor control (explicit; normally implicit in fire())
    # ------------------------------------------------------------------

    def acquire_floor(self, ref: WidgetRef) -> Optional[FloorGrant]:
        """Explicitly lock a couple group (e.g. around a long operation)."""
        return action_sync.request_floor(
            self, self.gid(ref), timeout=self.lock_timeout
        )

    def release_floor(self, grant: FloorGrant) -> None:
        action_sync.release_floor(self, grant)

    # ------------------------------------------------------------------
    # Runtime interface (used by widgets and the action-sync algorithm)
    # ------------------------------------------------------------------

    def process_local_event(self, widget: UIObject, event: Event) -> ExecutionResult:
        """Entry point for every local ``widget.fire(...)``."""
        guard = self._transport.guard() if self._transport else None
        if guard is not None:
            with guard:
                return self._process_local_event(widget, event)
        return self._process_local_event(widget, event)

    def _process_local_event(self, widget: UIObject, event: Event) -> ExecutionResult:
        self.trace.record(event)
        undo = widget.apply_feedback(event)
        source = (self.instance_id, widget.pathname)
        if not self.registered or self._transport is None or (
            self.replica_fast_path and not self.replica.is_coupled(source)
        ):
            # Uncoupled objects never touch the network: interaction stays
            # fully local, the key win of the replicated architecture.
            widget.run_callbacks(event)
            self.stats["events_local"] += 1
            result = ExecutionResult(executed=True, local_only=True)
        else:
            result = action_sync.run_multiple_execution(
                self, widget, event, undo, timeout=self.lock_timeout
            )
        self.last_execution = result
        return result

    def next_token(self) -> int:
        return next(self._tokens)

    def send(self, message: Message) -> None:
        self._require_connected()
        assert self._transport is not None
        self._transport.send(message)

    def request(
        self, message: Message, timeout: Optional[float] = None
    ) -> Optional[Message]:
        """Send *message* and block for its correlated reply.

        Returns ``None`` on timeout.  An ERROR reply raises
        :class:`ServerError`.
        """
        self._require_connected()
        assert self._transport is not None
        self._transport.send(message)
        msg_id = message.msg_id
        arrived = self._transport.drive(
            lambda: msg_id in self._replies,
            timeout=self.request_timeout if timeout is None else timeout,
        )
        if not arrived:
            self.stats["request_timeouts"] += 1
            self._abandoned.add(msg_id)
            return None
        reply = self._replies.pop(msg_id)
        if reply.kind == kinds.ERROR:
            raise ServerError(
                f"server rejected {message.kind}: {reply.payload.get('reason')}"
            )
        return reply

    def trace_remote_event(self, event: Event) -> None:
        self.trace.record(event)

    def accept_remote_event(self, event: Event) -> bool:
        """Deduplicate broadcast events (at-least-once tolerance).

        Event sequence numbers are strictly increasing per originating
        instance, so a seq at or below the last one seen from that origin
        is a duplicate delivery and must not be re-executed.
        """
        origin = event.instance_id
        if not origin:
            return True
        last = self._last_event_seq.get(origin, -1)
        if event.seq <= last:
            self.stats["duplicate_events"] += 1
            return False
        self._last_event_seq[origin] = event.seq
        return True

    def on_widget_destroyed(self, widget: UIObject) -> None:
        """Runtime hook from the toolkit: auto-decouple destroyed objects.

        "The decoupling algorithm is applied automatically when a UI object
        is destroyed" (§3.2).
        """
        if not self.registered or self._transport is None:
            return
        gid = self.gid(widget)
        if not coupling.subtree_is_coupled(self.replica, *gid):
            return
        self.send(
            Message(
                kind=kinds.DECOUPLE,
                sender=self.instance_id,
                payload={"object": gid_to_wire(gid)},
            )
        )

    # ------------------------------------------------------------------
    # Inbound message handling
    # ------------------------------------------------------------------

    #: Exceptions a malformed inbound payload can trigger; they are
    #: counted, never allowed to kill the client's receive path.
    _MALFORMED = (ReproError, KeyError, ValueError, TypeError, AttributeError,
                  IndexError)

    def handle_message(self, message: Message) -> None:
        """Sans-I/O inbound dispatch (invoked by the bound transport).

        Replies are stashed for :meth:`request` before dispatch, so even a
        malformed reply unblocks its waiter; handler failures on garbage
        payloads are counted in ``stats['malformed_messages']`` and
        swallowed — one bad message must not wedge the event loop.
        """
        self.stats[f"rx_{message.kind}"] += 1
        if message.reply_to is not None:
            if message.reply_to in self._abandoned:
                self._abandoned.discard(message.reply_to)
                self.stats["late_replies"] += 1
            else:
                self._replies[message.reply_to] = message
        try:
            self._dispatch_message(message)
        except self._MALFORMED:
            self.stats["malformed_messages"] += 1

    def _dispatch_message(self, message: Message) -> None:
        if message.kind == kinds.COUPLE_UPDATE:
            coupling.apply_couple_update(self.replica, message.payload)
        elif message.kind == kinds.INSTANCE_LIST:
            self._apply_roster(message.payload.get("roster", []))
        elif message.kind == kinds.EVENT_BROADCAST:
            action_sync.apply_remote_event(
                self, message.payload, trace=message.trace
            )
        elif message.kind == kinds.FETCH_STATE:
            self._on_fetch_state(message)
        elif message.kind == kinds.PUSH_STATE:
            self._on_push_state(message)
        elif message.kind == kinds.RESYNC_REQUEST:
            self._on_resync_request(message)
        elif message.kind == kinds.COMMAND:
            self._on_command(message)

    def _on_fetch_state(self, message: Message) -> None:
        """Owner side of CopyFrom/RemoteCopy: serialize the asked object."""
        obj = gid_from_wire(message.payload["object"])
        widget = self.find_widget(obj[1])
        if widget is None or widget.destroyed:
            self.send(
                message.error_reply(
                    self.instance_id, f"no such object {obj[1]!r}"
                )
            )
            return
        payload = state_sync.build_state_payload(widget, self.semantics)
        payload["object"] = gid_to_wire(obj)
        self.send(
            Message(
                kind=kinds.STATE_REPLY,
                sender=self.instance_id,
                payload=payload,
                reply_to=message.msg_id,
            )
        )

    def _on_push_state(self, message: Message) -> None:
        """Receiver side of CopyTo/RemoteCopy: apply the shipped state."""
        payload = message.payload
        target = gid_from_wire(payload["target"])
        widget = self.find_widget(target[1])
        if widget is None or widget.destroyed:
            self.stats["push_state_misses"] += 1
            return
        sync = payload.get("sync")
        if sync and sync.get("delta"):
            self._apply_push_delta(widget, target, payload, dict(sync))
            return
        predefined = payload.get("predefined")
        try:
            report = state_sync.apply_state_payload(
                widget,
                payload,
                mode=str(payload.get("mode", STRICT)),
                semantics=self.semantics,
                correspondences=self.correspondences,
                predefined=dict(predefined) if predefined else None,
            )
        except ReproError:
            self.stats["push_state_failures"] += 1
            return
        if sync is not None and "source" in payload:
            # Full snapshot under the delta protocol: (re)establish the
            # continuity baseline for this sender/target pair.
            source = gid_from_wire(payload["source"])
            self._delta_in[(source, target[1])] = {
                "seq": int(sync["seq"]),
                "fp": sync.get("fp"),
                "local_fp": spec_fingerprint(to_spec(widget, full_state=False)),
                "spec": payload.get("structure"),
                "mapping": report.mapping,
            }
        self._push_history(widget, report.old_state, reason="push_state")
        self.stats["states_applied"] += 1

    def _apply_push_delta(
        self,
        widget: UIObject,
        target: GlobalId,
        payload: Mapping[str, Any],
        sync: Dict[str, Any],
    ) -> None:
        """Apply a delta PUSH_STATE, or request a resync on continuity loss.

        Continuity holds when the delta's base sequence matches the last
        applied transfer and neither side's structure changed (sender
        fingerprint carried in the payload, ours recomputed locally).
        A broken chain — dropped transfer, structural change, restarted
        receiver — triggers a RESYNC_REQUEST routed to the sender, which
        answers with a fresh full snapshot.
        """
        source = gid_from_wire(payload["source"])
        key = (source, target[1])
        entry = self._delta_in.get(key)
        target_spec = to_spec(widget, full_state=False)
        if (
            entry is None
            or entry["seq"] != sync.get("base")
            or entry["fp"] != sync.get("fp")
            or entry["local_fp"] != spec_fingerprint(target_spec)
        ):
            self._delta_in.pop(key, None)
            self.stats["delta_resyncs"] += 1
            self._request_resync(source, target)
            return
        old_state = subtree_state(widget, relevant_only=True)
        state: Mapping[str, Mapping[str, Any]] = payload.get("state", {})
        if entry.get("mapping") is not None and entry.get("spec") is not None:
            state = translate_state(
                state,
                entry["spec"],
                target_spec,
                entry["mapping"],
                self.correspondences,
            )
        apply_subtree_state(widget, state)
        if "semantic" in payload:
            self.semantics.load_subtree(widget, dict(payload["semantic"]))
        entry["seq"] = int(sync["seq"])
        self._push_history(widget, old_state, reason="push_state")
        self.stats["states_applied"] += 1
        self.stats["deltas_applied"] += 1

    def _request_resync(self, source: GlobalId, target: GlobalId) -> None:
        """Ask the server to have *source*'s owner re-push a full snapshot."""
        if self._transport is None or self._transport.closed or not self.registered:
            return
        self.send(
            Message(
                kind=kinds.RESYNC_REQUEST,
                sender=self.instance_id,
                payload={
                    "object": gid_to_wire(source),
                    "target": gid_to_wire(target),
                },
            )
        )

    def _on_resync_request(self, message: Message) -> None:
        """Sender side of a resync: re-push a full snapshot, fire-and-forget.

        Runs inside the inbound dispatch, so it must not block on a
        correlated reply (a nested ``request`` could deadlock the memory
        network pump); the server's PUSH_STATE ack is pre-abandoned
        instead.  If the push is lost the receiver simply resyncs again.
        """
        payload = message.payload
        obj = gid_from_wire(payload["object"])
        target = gid_from_wire(payload["target"])
        widget = self.find_widget(obj[1])
        if widget is None or widget.destroyed:
            self.stats["resync_misses"] += 1
            return
        self._delta_out.pop((widget.pathname, target), None)
        push_payload, commit = self._build_push_payload(
            widget, target, STRICT, None
        )
        push = Message(
            kind=kinds.PUSH_STATE, sender=self.instance_id, payload=push_payload
        )
        self._abandoned.add(push.msg_id)
        self.send(push)
        if commit is not None:
            # Optimistic: if this push is also lost, the receiver's next
            # continuity check fails and it asks again.
            self._delta_out[(widget.pathname, target)] = commit
        self.stats["resync_pushes"] += 1

    def _on_command(self, message: Message) -> None:
        """Receiver side of CoSendCommand: unpack and interpret."""
        payload = message.payload
        command = str(payload.get("command", ""))
        try:
            reply_data = self.commands.dispatch(
                command, payload.get("data"), str(payload.get("origin", ""))
            )
        except ReproError:
            self.stats["command_failures"] += 1
            return
        if payload.get("want_reply"):
            self.send(
                Message(
                    kind=kinds.COMMAND_REPLY,
                    sender=self.instance_id,
                    payload={
                        "command": command,
                        "data": reply_data,
                        "origin": payload.get("origin", ""),
                        "origin_msg_id": payload.get("origin_msg_id"),
                    },
                )
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply_roster(self, roster: Any) -> None:
        self.roster = {
            str(entry["instance_id"]): RegistrationRecord.from_wire(dict(entry))
            for entry in roster or []
        }

    def _resolve_local(self, ref: WidgetRef) -> UIObject:
        if isinstance(ref, UIObject):
            return ref
        return self.widget(str(ref))

    def _require_connected(self) -> None:
        if self._transport is None or self._transport.closed:
            raise NotRegisteredError(self.instance_id)

    def __repr__(self) -> str:
        return (
            f"<ApplicationInstance {self.instance_id!r} user={self.user!r} "
            f"registered={self.registered}>"
        )
