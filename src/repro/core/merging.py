"""Destructive merging and flexible matching (§3.3).

For complex objects that are **not** structurally compatible, the paper
introduces two copy/couple enablers:

* **Destructive merging** — "Not only the attribute values, but also the
  structure of the dominating complex object is copied to the dominated
  object.  Copying structure includes destroying objects of the dominated
  complex object if they conflict with the dominating complex object, and
  creating objects if they do not exist in the dominated complex object."
* **Flexible matching** — "identifies identical substructures between two
  complex objects when they are coupled or synchronized by copying.
  Differing substructures are conserved by merging."

Both operate on a live target widget and a *source spec* (builder-format
structure of the dominating object) plus its subtree state, and return a
:class:`MergeReport` describing what happened — tests and the E7 benchmark
consume the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.toolkit.builder import _build_unchecked, validate_spec
from repro.toolkit.widget import UIObject



@dataclass
class MergeReport:
    """What a merge did, in target-relative paths."""

    created: List[str] = field(default_factory=list)
    destroyed: List[str] = field(default_factory=list)
    updated: List[str] = field(default_factory=list)
    conserved: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.created or self.destroyed or self.updated)

    def summary(self) -> Dict[str, int]:
        return {
            "created": len(self.created),
            "destroyed": len(self.destroyed),
            "updated": len(self.updated),
            "conserved": len(self.conserved),
        }


def _join(prefix: str, name: str) -> str:
    return f"{prefix}/{name}" if prefix else name


def _apply_node_state(
    widget: UIObject,
    rel_path: str,
    state: Mapping[str, Mapping[str, Any]],
    report: MergeReport,
) -> None:
    values = state.get(rel_path)
    if not values:
        return
    # The merge root itself is never replaced, so when the dominating
    # object's type differs the shipped state may name attributes this
    # widget type does not declare — skip those rather than fail the merge.
    known = {
        name: value
        for name, value in values.items()
        if name in type(widget).ATTRIBUTES
    }
    if known:
        widget.set_state(known)
        report.updated.append(rel_path)


def destructive_merge(
    target: UIObject,
    source_spec: Mapping[str, Any],
    source_state: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> MergeReport:
    """Force *target*'s structure and state to match the dominating object.

    Children are matched by name: a same-named child of a different widget
    type *conflicts* and is destroyed and rebuilt from the spec; children
    present only in the source are created; children present only in the
    target do not conflict with anything and survive (their state is
    conserved).
    """
    validate_spec(source_spec)
    state = source_state or {}
    report = MergeReport()
    _destructive_merge_node(target, source_spec, "", state, report)
    return report


def _destructive_merge_node(
    target: UIObject,
    spec: Mapping[str, Any],
    rel_path: str,
    state: Mapping[str, Mapping[str, Any]],
    report: MergeReport,
) -> None:
    _apply_node_state(target, rel_path, state, report)
    spec_children = {c["name"]: c for c in spec.get("children", [])}
    existing = {child.name: child for child in target.children}

    for name, child_spec in spec_children.items():
        child_path = _join(rel_path, name)
        child = existing.get(name)
        if child is not None and child.TYPE_NAME != child_spec["type"]:
            # Conflicting object: destroy and rebuild from the spec.
            child.destroy()
            report.destroyed.append(child_path)
            child = None
        if child is None:
            child = _build_unchecked(child_spec, target)
            report.created.append(child_path)
            # Newly built widgets already carry the spec's embedded state;
            # the shipped subtree state still overrides (it is fresher).
            _apply_created_subtree(child, child_path, state, report)
        else:
            _destructive_merge_node(child, child_spec, child_path, state, report)

    for name, child in existing.items():
        if name not in spec_children and not child.destroyed:
            report.conserved.append(_join(rel_path, name))


def _apply_created_subtree(
    widget: UIObject,
    rel_path: str,
    state: Mapping[str, Mapping[str, Any]],
    report: MergeReport,
) -> None:
    values = state.get(rel_path)
    if values:
        widget.set_state(values)
    for child in widget.children:
        _apply_created_subtree(child, _join(rel_path, child.name), state, report)


def flexible_match(
    target: UIObject,
    source_spec: Mapping[str, Any],
    source_state: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> MergeReport:
    """Copy state onto matching substructures; conserve and merge the rest.

    Matching is by (name, type) against the target's children.  Source
    substructures with no match are *merged in* (created); target
    substructures with no source counterpart are conserved untouched —
    nothing is ever destroyed.
    """
    validate_spec(source_spec)
    state = source_state or {}
    report = MergeReport()
    _flexible_match_node(target, source_spec, "", state, report)
    return report


def _flexible_match_node(
    target: UIObject,
    spec: Mapping[str, Any],
    rel_path: str,
    state: Mapping[str, Mapping[str, Any]],
    report: MergeReport,
) -> None:
    if target.TYPE_NAME == spec["type"]:
        _apply_node_state(target, rel_path, state, report)
    else:
        report.conserved.append(rel_path)
    spec_children = {c["name"]: c for c in spec.get("children", [])}
    existing = {child.name: child for child in target.children}

    for name, child_spec in spec_children.items():
        child_path = _join(rel_path, name)
        child = existing.get(name)
        if child is not None and child.TYPE_NAME == child_spec["type"]:
            # Identical substructure root: recurse.
            _flexible_match_node(child, child_spec, child_path, state, report)
        elif child is None:
            # Differing substructure: merge it in, conserving the target's
            # own children.
            created = _build_unchecked(child_spec, target)
            report.created.append(child_path)
            _apply_created_subtree(created, child_path, state, report)
        else:
            # Same name, different type: conserve the target's version.
            report.conserved.append(child_path)

    for name in existing:
        if name not in spec_children:
            report.conserved.append(_join(rel_path, name))
