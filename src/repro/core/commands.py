"""CoSendCommand: the extensible application-specific protocol (§3.4).

"To define application-specific communication protocol, we provide a
primitive (CoSendCommand) which enables programmers to define their own
protocols.  An application can call this primitive to send a command (i.e.
a symbolic name of a function) together with a packed message to other
instances.  In the receiver instances, a function (corresponding to the
command) is defined to unpack and interpret the message."

The messages are routed by the central server; this module is the
receiver-side dispatch table.  A handler receives ``(data, sender_id)`` and
may return a JSON-safe value, which (when the sender asked for replies) is
sent back as a COMMAND_REPLY.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import UnknownCommandError
from repro.toolkit.attributes import json_safe

CommandHandler = Callable[[Any, str], Any]


class CommandRegistry:
    """Per-instance table of application-defined command handlers."""

    def __init__(self) -> None:
        self._handlers: Dict[str, CommandHandler] = {}
        self.dispatched = 0
        self.unknown = 0

    def register(self, command: str, handler: CommandHandler) -> None:
        """Define (or replace) the function interpreting *command*."""
        if not command:
            raise ValueError("command name must be non-empty")
        self._handlers[command] = handler

    def unregister(self, command: str) -> bool:
        return self._handlers.pop(command, None) is not None

    def knows(self, command: str) -> bool:
        return command in self._handlers

    def commands(self) -> List[str]:
        return sorted(self._handlers)

    def dispatch(self, command: str, data: Any, sender: str) -> Any:
        """Invoke the handler for *command*; returns its reply value.

        Raises :class:`UnknownCommandError` for unregistered commands and
        :class:`ValueError` if the handler's reply is not JSON-safe.
        """
        handler = self._handlers.get(command)
        if handler is None:
            self.unknown += 1
            raise UnknownCommandError(command)
        self.dispatched += 1
        reply = handler(data, sender)
        if reply is not None and not json_safe(reply):
            raise ValueError(
                f"handler for command {command!r} returned non-serializable data"
            )
        return reply
