"""The paper's primary contribution: the flexible coupling runtime.

Public surface:

* :class:`~repro.core.instance.ApplicationInstance` — the client runtime
  (register, couple/decouple, CopyFrom/CopyTo/RemoteCopy, CoSendCommand);
* :mod:`~repro.core.compat` — object compatibility (§3.3);
* :mod:`~repro.core.merging` — destructive merging / flexible matching;
* :mod:`~repro.core.state_sync` — synchronization by UI state (§3.1);
* :mod:`~repro.core.action_sync` — synchronization by multiple execution
  (§3.2, the floor-control algorithm);
* :class:`~repro.core.semantic.SemanticHookRegistry` — semantic store/load;
* :class:`~repro.core.commands.CommandRegistry` — CoSendCommand dispatch.
"""

from repro.core.action_sync import ExecutionResult, FloorGrant
from repro.core.commands import CommandRegistry
from repro.core.compat import (
    AttributeMapping,
    ComponentMapping,
    CorrespondenceRegistry,
    DEFAULT_CORRESPONDENCES,
    EXHAUSTIVE,
    HEURISTIC,
    MatchResult,
    MatchStats,
    PREDEFINED,
    attribute_mapping,
    declare_inferred,
    directly_compatible,
    ensure_compatible,
    infer_correspondence,
    structurally_compatible,
    translate_state,
)
from repro.core.groups import CouplingGroup
from repro.core.instance import ApplicationInstance
from repro.core.merging import MergeReport, destructive_merge, flexible_match
from repro.core.semantic import SemanticHookRegistry, attach_attribute_semantics
from repro.core.state_sync import (
    AUTO,
    ApplyReport,
    FLEXIBLE,
    MERGE,
    MODES,
    STRICT,
    apply_state_payload,
    build_state_payload,
)

__all__ = [
    "AUTO",
    "ApplicationInstance",
    "ApplyReport",
    "AttributeMapping",
    "CommandRegistry",
    "ComponentMapping",
    "CorrespondenceRegistry",
    "CouplingGroup",
    "declare_inferred",
    "infer_correspondence",
    "DEFAULT_CORRESPONDENCES",
    "EXHAUSTIVE",
    "ExecutionResult",
    "FLEXIBLE",
    "FloorGrant",
    "HEURISTIC",
    "MERGE",
    "MODES",
    "MatchResult",
    "MatchStats",
    "MergeReport",
    "PREDEFINED",
    "STRICT",
    "SemanticHookRegistry",
    "apply_state_payload",
    "attach_attribute_semantics",
    "attribute_mapping",
    "build_state_payload",
    "destructive_merge",
    "directly_compatible",
    "ensure_compatible",
    "flexible_match",
    "structurally_compatible",
    "translate_state",
]
