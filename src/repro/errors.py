"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: toolkit errors, network errors, server errors and coupling errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Toolkit errors
# ---------------------------------------------------------------------------

class ToolkitError(ReproError):
    """Base class for UI-toolkit errors."""


class UnknownAttributeError(ToolkitError, AttributeError):
    """An attribute name is not defined for the widget type."""

    def __init__(self, widget_type: str, attribute: str):
        super().__init__(
            f"widget type {widget_type!r} has no attribute {attribute!r}"
        )
        self.widget_type = widget_type
        self.attribute = attribute


class AttributeValidationError(ToolkitError, ValueError):
    """A value failed an attribute's validator."""

    def __init__(self, attribute: str, value: object, reason: str):
        super().__init__(
            f"invalid value {value!r} for attribute {attribute!r}: {reason}"
        )
        self.attribute = attribute
        self.value = value
        self.reason = reason


class DuplicateChildError(ToolkitError):
    """A widget already has a child with the requested name."""


class DestroyedWidgetError(ToolkitError):
    """An operation was attempted on a destroyed widget."""


class PathError(ToolkitError, KeyError):
    """A pathname did not resolve to a widget."""

    def __init__(self, pathname: str):
        super().__init__(f"no widget at path {pathname!r}")
        self.pathname = pathname


class BuilderError(ToolkitError):
    """A declarative UI specification was malformed."""


# ---------------------------------------------------------------------------
# Network errors
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for transport/codec errors."""


class CodecError(NetworkError, ValueError):
    """A wire message could not be encoded or decoded."""


class UnknownCommunicatorError(NetworkError, ValueError):
    """No communicator backend is registered under the requested name."""

    def __init__(self, name: str, known=()):
        known = tuple(known)
        hint = f"; registered communicators: {list(known)}" if known else ""
        super().__init__(f"unknown backend {name!r}{hint}")
        self.name = name
        self.known = known


class CommunicatorDependencyError(NetworkError, ImportError):
    """A registered communicator backend failed to import.

    Raised when a backend name resolves but its module (typically an
    optional dependency shipped as a pip extra) is not installed.  The
    message names the extra to install, so the failure is actionable.
    """

    def __init__(self, name: str, target: str, reason: str, extra=None):
        remedy = (
            f'install it with: pip install "repro[{extra}]"'
            if extra
            else "is its package installed?"
        )
        super().__init__(
            f"communicator backend {name!r} is registered but could not be "
            f"loaded ({target}: {reason}) — {remedy}"
        )
        self.name = name
        self.target = target
        self.reason = reason
        self.extra = extra


class TransportClosedError(NetworkError):
    """An operation was attempted on a closed transport endpoint."""


class DeliveryError(NetworkError):
    """A message could not be delivered (unknown peer, dropped link)."""


# ---------------------------------------------------------------------------
# Server errors
# ---------------------------------------------------------------------------

class ServerError(ReproError):
    """Base class for central-server errors."""


class NotRegisteredError(ServerError):
    """An instance id is unknown to the server's registration records."""

    def __init__(self, instance_id: str):
        super().__init__(f"application instance {instance_id!r} is not registered")
        self.instance_id = instance_id


class AlreadyRegisteredError(ServerError):
    """An instance id is already present in the registration records."""


class PermissionDeniedError(ServerError):
    """The access-permission table forbids the requested operation."""

    def __init__(self, user: str, target: str, right: str):
        super().__init__(
            f"user {user!r} lacks {right!r} permission on {target!r}"
        )
        self.user = user
        self.target = target
        self.right = right


class LockDeniedError(ServerError):
    """The floor-control lock for a couple group could not be acquired."""


class HistoryError(ServerError):
    """Undo/redo was requested but no matching historical UI state exists."""


class PersistenceError(ServerError):
    """The durable op log or snapshot store is unreadable or corrupt."""


# ---------------------------------------------------------------------------
# Coupling / core errors
# ---------------------------------------------------------------------------

class CouplingError(ReproError):
    """Base class for errors of the coupling runtime."""


class IncompatibleObjectsError(CouplingError):
    """Two UI objects are not compatible and cannot be coupled/copied."""

    def __init__(self, source: str, target: str, reason: str):
        super().__init__(
            f"cannot couple/copy {source!r} -> {target!r}: {reason}"
        )
        self.source = source
        self.target = target
        self.reason = reason


class NoSuchCoupleError(CouplingError):
    """Decoupling was requested for a link that does not exist."""


class UnknownCommandError(CouplingError):
    """A CoSendCommand arrived for a command with no registered handler."""

    def __init__(self, command: str):
        super().__init__(f"no handler registered for command {command!r}")
        self.command = command


class SemanticHookError(CouplingError):
    """A semantic store/load hook raised or returned malformed data."""
