"""The append-only operation log: length-prefixed, CRC-checked, rotating.

One entry is one journaled server operation::

    {"seq": 17, "t": 0.042, "msg": {<wire message>}}

framed on disk as ``[u32 body length][u32 crc32(body)][body]`` with the
body in the codec's canonical JSON form (sorted keys, compact
separators).  Entries append to the active segment file
``oplog-<firstseq>.log``; when it exceeds ``segment_bytes`` a new segment
starts, so compaction can drop whole files below a snapshot's sequence
number without rewriting anything.

Reads verify every CRC.  A torn write at the very tail of the *last*
segment (the crash case fsync policies allow) is truncated silently;
corruption anywhere else raises :class:`~repro.errors.PersistenceError`
— an operator runs ``python -m repro.tools.persist verify-crc`` to
locate it.

:class:`MemoryOpLog` offers the same interface without a filesystem —
used by tests, by ephemeral sessions, and as the vehicle for shipping a
log suffix between shards.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import PersistenceError

#: One frame header: big-endian u32 body length, u32 CRC32 of the body.
_HEADER = struct.Struct(">II")

#: Hard ceiling on one entry's body, protecting readers from a corrupt
#: length field claiming gigabytes.
MAX_ENTRY_SIZE = 64 * 1024 * 1024

_SEGMENT_PREFIX = "oplog-"
_SEGMENT_SUFFIX = ".log"


def _dumps(entry: Dict[str, Any]) -> bytes:
    return json.dumps(entry, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(name: str) -> Optional[int]:
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(digits)
    except ValueError:
        return None


def frame_entry(entry: Dict[str, Any]) -> bytes:
    """Serialize one entry to its on-disk frame (header + body)."""
    body = _dumps(entry)
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _read_frames(
    data: bytes, *, tolerate_torn_tail: bool
) -> Tuple[List[Dict[str, Any]], Optional[str]]:
    """Decode consecutive frames from *data*.

    Returns ``(entries, problem)`` where *problem* is ``None`` on a clean
    read, or a description of the defect that stopped it.  With
    *tolerate_torn_tail* an incomplete or CRC-failing *final* frame is
    reported but not fatal — the caller decides.
    """
    entries: List[Dict[str, Any]] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            return entries, f"truncated header at byte {offset}"
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_ENTRY_SIZE:
            return entries, f"implausible entry length {length} at byte {offset}"
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return entries, f"truncated body at byte {offset}"
        body = data[start:end]
        if zlib.crc32(body) != crc:
            return entries, f"CRC mismatch at byte {offset}"
        try:
            entry = json.loads(body)
        except ValueError:
            return entries, f"unparseable entry at byte {offset}"
        entries.append(entry)
        offset = end
    return entries, None


class OpLog:
    """File-backed append-only op log with segment rotation.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.
    segment_bytes:
        Rotation threshold for the active segment.
    fsync:
        ``"always"`` fsyncs after every append, ``"batch"`` only on
        :meth:`sync` / :meth:`close` (the default — the journal
        coordinator syncs at snapshot boundaries), ``"never"`` leaves
        durability to the OS page cache.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = 1 << 20,
        fsync: str = "batch",
    ):
        if fsync not in ("always", "batch", "never"):
            raise ValueError(f"unknown fsync policy {fsync!r}")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        self._active: Optional[Any] = None      # open file handle
        self._active_first = 0                  # first seq of active segment
        self._active_size = 0
        self._last_seq = 0
        self._first_seq = 0                     # oldest retained seq (0 = none)
        self.fsyncs = 0
        self._recover_tail()

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def _segments(self) -> List[Tuple[int, str]]:
        """(first_seq, path) of every segment, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            first = _segment_first_seq(name)
            if first is not None:
                found.append((first, os.path.join(self.directory, name)))
        found.sort()
        return found

    def _recover_tail(self) -> None:
        """Find the last valid seq; truncate a torn tail frame in place."""
        segments = self._segments()
        if not segments:
            return
        self._first_seq = segments[0][0]
        last_first, last_path = segments[-1]
        with open(last_path, "rb") as fh:
            data = fh.read()
        entries, problem = _read_frames(data, tolerate_torn_tail=True)
        if problem is not None:
            # A crash mid-append leaves a torn frame at the tail: cut it
            # off so appends resume from the last durable entry.  Damage
            # that still leaves undecodable bytes is real corruption.
            good = sum(len(frame_entry(e)) for e in entries)
            with open(last_path, "r+b") as fh:
                fh.truncate(good)
        if entries:
            self._last_seq = int(entries[-1]["seq"])
        elif len(segments) > 1:
            prev_entries = self._read_segment(segments[-2][1])
            self._last_seq = int(prev_entries[-1]["seq"]) if prev_entries else 0
        self._active_first = last_first
        self._active_size = os.path.getsize(last_path)
        self._active = open(last_path, "ab")

    def _read_segment(self, path: str) -> List[Dict[str, Any]]:
        with open(path, "rb") as fh:
            data = fh.read()
        entries, problem = _read_frames(data, tolerate_torn_tail=False)
        if problem is not None:
            raise PersistenceError(f"{path}: {problem}")
        return entries

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry (0 when empty)."""
        return self._last_seq

    @property
    def first_seq(self) -> int:
        """Sequence number the oldest retained segment starts at (0 = none)."""
        return self._first_seq

    def append(self, payload: Dict[str, Any]) -> int:
        """Append one entry; assigns and returns the next sequence number."""
        seq = self._last_seq + 1
        entry = dict(payload)
        entry["seq"] = seq
        self.append_entry(entry)
        return seq

    def append_entry(self, entry: Dict[str, Any]) -> None:
        """Append a fully-formed entry (log shipping / catch-up installs)."""
        seq = int(entry["seq"])
        if seq <= self._last_seq:
            raise PersistenceError(
                f"out-of-order append: seq {seq} after {self._last_seq}"
            )
        if self._active is None or (
            self._active_size >= self.segment_bytes and self._active_size > 0
        ):
            self._rotate(seq)
        frame = frame_entry(entry)
        self._active.write(frame)
        self._active_size += len(frame)
        self._last_seq = seq
        if self._first_seq == 0:
            self._first_seq = seq
        if self.fsync == "always":
            self.sync()
        elif self.fsync == "batch":
            self._active.flush()

    def _rotate(self, first_seq: int) -> None:
        if self._active is not None:
            self.sync()
            self._active.close()
        path = os.path.join(self.directory, _segment_name(first_seq))
        self._active = open(path, "ab")
        self._active_first = first_seq
        self._active_size = os.path.getsize(path)

    def sync(self) -> None:
        """Flush and fsync the active segment."""
        if self._active is None or self.fsync == "never":
            return
        self._active.flush()
        os.fsync(self._active.fileno())
        self.fsyncs += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def read(self, after_seq: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield entries with ``seq > after_seq`` in order."""
        if self._active is not None:
            self._active.flush()
        for first, path in self._segments():
            entries = self._read_segment(path)
            if entries and int(entries[-1]["seq"]) <= after_seq:
                continue
            for entry in entries:
                if int(entry["seq"]) > after_seq:
                    yield entry

    def entries_after(self, after_seq: int = 0) -> List[Dict[str, Any]]:
        return list(self.read(after_seq))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self, upto_seq: int) -> int:
        """Drop whole segments whose entries are all ``<= upto_seq``.

        Only safe below a durable snapshot's sequence number.  Returns
        the number of segments removed; the active segment never goes.
        """
        removed = 0
        segments = self._segments()
        for index, (first, path) in enumerate(segments):
            if path == getattr(self._active, "name", None):
                break
            # A segment's entries end where the next one begins.
            next_first = (
                segments[index + 1][0] if index + 1 < len(segments) else None
            )
            if next_first is None or next_first - 1 > upto_seq:
                break
            os.remove(path)
            removed += 1
            self._first_seq = next_first
        return removed

    def verify(self) -> Dict[str, Any]:
        """CRC-check every segment; returns a structured report."""
        report: Dict[str, Any] = {
            "segments": [],
            "entries": 0,
            "corrupt": 0,
            "first_seq": None,
            "last_seq": None,
        }
        if self._active is not None:
            self._active.flush()
        for first, path in self._segments():
            with open(path, "rb") as fh:
                data = fh.read()
            entries, problem = _read_frames(data, tolerate_torn_tail=True)
            report["segments"].append(
                {
                    "path": os.path.basename(path),
                    "entries": len(entries),
                    "bytes": len(data),
                    "problem": problem,
                }
            )
            report["entries"] += len(entries)
            if problem is not None:
                report["corrupt"] += 1
            if entries:
                if report["first_seq"] is None:
                    report["first_seq"] = int(entries[0]["seq"])
                report["last_seq"] = int(entries[-1]["seq"])
        return report

    def close(self) -> None:
        if self._active is not None:
            self.sync()
            self._active.close()
            self._active = None


class MemoryOpLog:
    """The op-log interface over a plain list — no filesystem.

    Backs ephemeral persistence (property tests, in-process standbys)
    and serves as the container a log suffix ships in.
    """

    def __init__(self, **_ignored: Any):
        self._entries: List[Dict[str, Any]] = []
        # Tracked explicitly so compaction keeps the log's position: a
        # fully-compacted log still knows what it has seen and dropped.
        self._last_seq = 0
        self._first_seq = 0
        self.fsyncs = 0

    @property
    def last_seq(self) -> int:
        return self._last_seq

    @property
    def first_seq(self) -> int:
        return self._first_seq

    def append(self, payload: Dict[str, Any]) -> int:
        seq = self._last_seq + 1
        entry = dict(payload)
        entry["seq"] = seq
        self._entries.append(entry)
        self._last_seq = seq
        if self._first_seq == 0:
            self._first_seq = seq
        return seq

    def append_entry(self, entry: Dict[str, Any]) -> None:
        seq = int(entry["seq"])
        if seq <= self._last_seq:
            raise PersistenceError(
                f"out-of-order append: seq {seq} after {self._last_seq}"
            )
        self._entries.append(dict(entry))
        self._last_seq = seq
        if self._first_seq == 0:
            self._first_seq = seq

    def sync(self) -> None:
        pass

    def read(self, after_seq: int = 0) -> Iterator[Dict[str, Any]]:
        for entry in self._entries:
            if int(entry["seq"]) > after_seq:
                # Deep copy: callers hand entries to replay, which must
                # not be able to mutate the journal through them.
                yield json.loads(_dumps(entry))

    def entries_after(self, after_seq: int = 0) -> List[Dict[str, Any]]:
        return list(self.read(after_seq))

    def compact(self, upto_seq: int) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if int(e["seq"]) > upto_seq]
        if self._first_seq:
            if self._entries:
                self._first_seq = int(self._entries[0]["seq"])
            else:
                # Everything below the compaction point is gone; the
                # next retained seq (if any ever lands) starts here.
                self._first_seq = min(upto_seq, self._last_seq) + 1
        return before - len(self._entries)

    def verify(self) -> Dict[str, Any]:
        return {
            "segments": [],
            "entries": len(self._entries),
            "corrupt": 0,
            "first_seq": self.first_seq or None,
            "last_seq": self.last_seq or None,
        }

    def close(self) -> None:
        pass
