"""Crash recovery and late-join catch-up for event-sourced servers.

Recovery is "latest snapshot + log-suffix replay": the suffix messages
re-enter :meth:`~repro.server.server.CosoftServer.handle_message`
**verbatim** — the same handlers, in the same order, against the same
clock readings the live server saw (each journal entry carries the
server-clock time it executed at, and replay drives a
:class:`~repro.net.clock.SimClock` to it).  No dedup, no idempotence
assumptions: whatever the live server processed — including duplicates
and requests it answered with errors — replays identically, which is
what makes the recovered database bit-equal to the lost one.

Replayed handlers still *send* (broadcasts, replies); those transmissions
already happened in the previous life, so replay binds a
:class:`DiscardTransport` that swallows them.  The journal is detached
for the duration — replay must read the log, never grow it.

The same machinery serves three callers:

* :func:`recover_server` / :func:`recover_cluster` — restart after a
  crash (or, with ``at_seq``, time-travel to any historical point);
* :func:`apply_catchup` — a late joiner or warm standby applies a
  CATCHUP_REPLY (log suffix, optionally preceded by a snapshot) instead
  of a full PUSH_STATE, then checks its fingerprint against the
  server's.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.net.clock import SimClock
from repro.net.message import Message
from repro.net.transport import SERVER_ID, TrafficStats, Transport
from repro.persist.snapshot import restore_state, server_fingerprint


class DiscardTransport(Transport):
    """A transport that counts and drops everything it is given.

    Bound to a server during replay: the outbound traffic was already
    delivered in the server's previous life.
    """

    def __init__(self, local_id: str = SERVER_ID):
        self._local_id = local_id
        self._stats = TrafficStats()
        self._closed = False
        self.discarded = 0

    @property
    def local_id(self) -> str:
        return self._local_id

    @property
    def stats(self) -> TrafficStats:
        return self._stats

    def send(self, message: Message) -> None:
        self.discarded += 1

    def recv(self, message: Message) -> None:
        self.discarded += 1

    def drive(
        self, predicate: Callable[[], bool], timeout: float = 5.0
    ) -> bool:
        return bool(predicate())

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


def _replay_into(
    server: Any,
    clock: SimClock,
    entries: Any,
    *,
    at_seq: Optional[int] = None,
    install_log: Any = None,
) -> int:
    """Feed journal *entries* through *server*'s handlers, in order.

    The clock advances to each entry's recorded execution time first, so
    clock-derived state (``registered_at``, floor grant times, history
    timestamps) reproduces exactly.  With *install_log* each applied
    entry is also appended to that op log (catch-up: the joiner's own
    journal must track the position it has reached).
    """
    replayed = 0
    for entry in entries:
        seq = int(entry["seq"])
        if at_seq is not None and seq > at_seq:
            break
        t = float(entry.get("t", 0.0))
        if t > clock.now():
            clock.advance_to(t)
        server.handle_message(Message.from_wire(entry["msg"]))
        if install_log is not None:
            install_log.append_entry(entry)
        replayed += 1
    return replayed


def recover_server(
    persistence: Any,
    *,
    at_seq: Optional[int] = None,
    **server_kwargs: Any,
) -> Any:
    """Rebuild a :class:`CosoftServer` from its journal.

    Loads the newest snapshot at or below *at_seq* (latest, if ``None``),
    installs it, and replays the log suffix.  Without *at_seq* the
    journal is re-attached afterwards so the recovered server resumes
    journaling where the dead one stopped; with *at_seq* the result is a
    read-only historical reconstruction (time travel) and stays
    detached.

    *server_kwargs* are forwarded to the ``CosoftServer`` constructor
    and must mirror the dead server's configuration.
    """
    from repro.server.server import CosoftServer

    clock = SimClock()
    server = CosoftServer(clock=clock, **server_kwargs)
    server.bind(DiscardTransport())
    after = 0
    snap = persistence.snapshots.load_latest(max_seq=at_seq)
    if snap is not None:
        restore_state(server, snap["state"])
        clock.advance_to(float(snap.get("clock", 0.0)))
        after = int(snap["seq"])
    replayed = _replay_into(
        server, clock, persistence.log.read(after), at_seq=at_seq
    )
    persistence.replayed_ops += replayed
    if at_seq is None:
        server.persistence = persistence
    return server


def recover_cluster(
    config: Any,
    *,
    at_seq: Optional[int] = None,
    **cluster_kwargs: Any,
) -> Any:
    """Rebuild a :class:`ShardedCosoftCluster` from its per-shard journals.

    Each shard recovers independently — its own snapshot, its own log
    suffix, its own replay clock (shards journal concurrently, so their
    time lines interleave; a private clock per shard reproduces each
    shard's exact clock readings without ever running time backwards).
    Router state (couple-table mirror, home pins, floor/lock routes,
    registry) is then rebuilt from the recovered shards in one pass
    rather than inferred from replay side effects.
    """
    from repro.cluster.router import ShardedCosoftCluster

    cluster = ShardedCosoftCluster(persistence=config, **cluster_kwargs)
    cluster.bind(DiscardTransport())
    latest = 0.0
    for shard_id, shard in cluster.shards.items():
        persist = shard.persistence
        if persist is None:
            continue
        shard.persistence = None    # replay reads the log, never grows it
        shard_clock = SimClock()
        shard.clock = shard_clock
        after = 0
        snap = persist.snapshots.load_latest(max_seq=at_seq)
        if snap is not None:
            restore_state(shard, snap["state"])
            shard_clock.advance_to(float(snap.get("clock", 0.0)))
            after = int(snap["seq"])
        persist.replayed_ops += _replay_into(
            shard, shard_clock, persist.log.read(after), at_seq=at_seq
        )
        latest = max(latest, shard_clock.now())
        shard.clock = cluster.clock
        if at_seq is None:
            shard.persistence = persist
    if latest > cluster.clock.now():
        cluster.clock.advance_to(latest)
    rebuild_router_state(cluster)
    # Unbind so the caller's bind() is the first real transport; the
    # replay sink must not swallow live traffic by accident.
    cluster._transport = None
    return cluster


def rebuild_router_state(cluster: Any) -> None:
    """Derive the router's books from its shards' recovered databases.

    One authoritative pass instead of trusting replay side effects: the
    mirror couple table and sticky home pins come from each shard's
    couple/lock/floor/history holdings, the floor-ack routes from each
    shard's pending-ack sets, and the roster from the shard replicas
    (every shard holds the full registry).
    """
    from repro.server.couples import CoupleTable

    cluster.mirror = CoupleTable()
    cluster._home = {}
    cluster._lock_routes = {}
    cluster._floor_routes = {}
    cluster._floor_expected = {}
    cluster._pending_routes = {}
    for shard_id, shard in cluster.shards.items():
        for link in shard.couples.links():
            cluster.mirror.add_link(link)
            for gid in (link.source, link.target):
                cluster._home[gid] = shard_id
        for obj in shard.locks.locked_objects():
            cluster._home[obj] = shard_id
        for key, objects in shard._floors.items():
            cluster._lock_routes[key] = shard_id
            for gid in objects:
                cluster._home[gid] = shard_id
        for obj in shard.history.objects():
            cluster._home[obj] = shard_id
        for key, pending in shard._pending_acks.items():
            if pending:
                cluster._floor_routes[key] = shard_id
                cluster._floor_expected[key] = len(pending)
    for shard in cluster.shards.values():
        for record in shard.registry.records():
            if record.instance_id not in cluster.registry:
                cluster.registry.add(record)
        break   # every shard replicates the full roster; one suffices
    # Drop pins that merely restate the ring assignment — the live
    # router only pins what moved away from (or beyond) its ring home.
    for gid in [g for g, home in cluster._home.items()]:
        if (
            len(cluster.mirror.group_of(gid)) <= 1
            and cluster._home[gid] == cluster._ring_home(gid)
            and cluster.shards[cluster._home[gid]].history.depth(gid) == (0, 0)
            and cluster.shards[cluster._home[gid]].locks.holder(gid) is None
        ):
            del cluster._home[gid]


def apply_catchup(
    server: Any, payload: Mapping[str, Any]
) -> Dict[str, Any]:
    """Apply a CATCHUP_REPLY payload to a (possibly fresh) server.

    Installs the snapshot if one rides along and the server is behind
    it, replays the suffix entries the server has not seen (sequence
    high-water-mark dedup — entries at or below the local journal
    position were applied in this server's own past), appends them to
    the local journal, and compares fingerprints with the authority.
    """
    persist = server.persistence
    known = persist.log.last_seq if persist is not None else 0
    if server._transport is None:
        server.bind(DiscardTransport())
    clock = server.clock
    applied = 0
    snap = payload.get("snapshot")
    if snap is not None and int(snap["seq"]) > known:
        restore_state(server, snap["state"])
        snap_clock = float(snap.get("clock", 0.0))
        if isinstance(clock, SimClock) and snap_clock > clock.now():
            clock.advance_to(snap_clock)
        known = int(snap["seq"])
    server.persistence = None       # replay must not re-journal
    try:
        fresh: List[Dict[str, Any]] = [
            e for e in payload.get("entries", ()) if int(e["seq"]) > known
        ]
        if isinstance(clock, SimClock):
            applied = _replay_into(
                server, clock, fresh,
                install_log=persist.log if persist is not None else None,
            )
        else:
            for entry in fresh:
                server.handle_message(Message.from_wire(entry["msg"]))
                if persist is not None:
                    persist.log.append_entry(entry)
                applied += 1
    finally:
        server.persistence = persist
    fingerprint = server_fingerprint(server)
    expected = payload.get("fingerprint")
    return {
        "applied": applied,
        "fingerprint": fingerprint,
        "fingerprint_ok": (
            fingerprint == expected if expected is not None else None
        ),
        "last_seq": persist.log.last_seq if persist is not None else known,
    }
