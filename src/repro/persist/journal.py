"""The persistence coordinator a server journals its operations through.

:class:`Persistence` ties together one op log and one snapshot store
behind the two calls the server makes on its hot path:

* :meth:`Persistence.record` — append the just-applied operation (wire
  form plus the server-clock time it executed at, so replay can
  reproduce clock-derived state exactly);
* an automatic snapshot every ``snapshot_every`` appends, bounding
  recovery time to one snapshot load plus a short log-suffix replay.

:class:`PersistenceConfig` is the declarative knob surface exposed on
``SessionConfig(persistence=...)``.  ``directory=None`` selects the
in-memory backends — durable for the lifetime of the process, which is
exactly what property tests and standby catch-up need.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.persist.oplog import MemoryOpLog, OpLog, frame_entry
from repro.persist.snapshot import (
    MemorySnapshotStore,
    SnapshotStore,
    build_snapshot,
    server_fingerprint,
)


@dataclass(frozen=True)
class PersistenceConfig:
    """Declarative persistence settings (see docs/PERSISTENCE.md).

    directory:
        Root for op-log segments and snapshot files; ``None`` keeps
        everything in memory (tests, standbys, log shipping).
    fsync:
        Op-log durability policy: ``"always"`` | ``"batch"`` | ``"never"``.
    segment_bytes:
        Op-log segment rotation threshold.
    snapshot_every:
        Take a snapshot after this many journaled operations
        (``0`` disables automatic snapshots).
    keep_snapshots:
        How many snapshot generations to retain.
    """

    directory: Optional[str] = None
    fsync: str = "batch"
    segment_bytes: int = 1 << 20
    snapshot_every: int = 500
    keep_snapshots: int = 2

    def for_shard(self, shard_id: str) -> "PersistenceConfig":
        """The same settings homed in a per-shard subdirectory."""
        if self.directory is None:
            return self
        return replace(self, directory=os.path.join(self.directory, shard_id))

    def build(self) -> "Persistence":
        return Persistence(self)


class Persistence:
    """One server's journal: op log + snapshot store + counters."""

    def __init__(self, config: PersistenceConfig):
        self.config = config
        if config.directory is None:
            self.log: Any = MemoryOpLog()
            self.snapshots: Any = MemorySnapshotStore(keep=config.keep_snapshots)
        else:
            self.log = OpLog(
                os.path.join(config.directory, "oplog"),
                segment_bytes=config.segment_bytes,
                fsync=config.fsync,
            )
            self.snapshots = SnapshotStore(
                os.path.join(config.directory, "snapshots"),
                keep=config.keep_snapshots,
            )
        #: Routing epoch stamped into snapshots (set by the cluster).
        self.epoch = 0
        self.appends = 0
        self.append_bytes = 0
        self.snapshots_taken = 0
        self.snapshot_bytes = 0
        self.replayed_ops = 0
        self.catchup_requests = 0
        self.catchup_entries_served = 0
        self.last_suffix_length = 0
        self._since_snapshot = 0
        self._fsync_hist: Any = None    # histogram child once obs is wired

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def record(self, server: Any, message: Any, **extra: Any) -> int:
        """Journal one just-applied operation; returns its sequence number.

        Called by the server *after* a handler succeeded, so the log
        holds exactly the operations that mutated state, in the order
        they were applied.  *extra* keys ride along in the entry —
        a multi-process shard worker stores the router's delivery id and
        the outputs the op produced, making ack-plus-replay exactly-once
        (docs/CLUSTER.md); replay ignores unknown keys.
        """
        entry = {"t": server.clock.now(), "msg": message.to_wire()}
        if extra:
            entry.update(extra)
        # Time appends under "batch" too, not just "always": the batch
        # policy's durability latency (buffered appends plus the periodic
        # sync() folds into the same histogram) would otherwise be
        # invisible to the obs layer.
        timed = (
            self.config.fsync in ("always", "batch")
            and self._fsync_hist is not None
        )
        started = time.perf_counter() if timed else 0.0
        seq = self.log.append(entry)
        if timed:
            self._fsync_hist.observe(time.perf_counter() - started)
        self.appends += 1
        self.append_bytes += len(frame_entry(dict(entry, seq=seq)))
        self._since_snapshot += 1
        if (
            self.config.snapshot_every > 0
            and self._since_snapshot >= self.config.snapshot_every
        ):
            self.snapshot(server)
        return seq

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self, server: Any) -> Dict[str, Any]:
        """Checkpoint the server's database at the current log position."""
        self.sync()     # the log must be durable up to the seq we claim
        snap = build_snapshot(server, self.log.last_seq, self.epoch)
        self.snapshot_bytes += self.snapshots.save(snap)
        self.snapshots_taken += 1
        self._since_snapshot = 0
        return snap

    def sync(self) -> None:
        """Force the op log durable, timing the fsync when observed."""
        if self._fsync_hist is not None:
            started = time.perf_counter()
            self.log.sync()
            self._fsync_hist.observe(time.perf_counter() - started)
        else:
            self.log.sync()

    # ------------------------------------------------------------------
    # Reads (recovery, catch-up, time travel)
    # ------------------------------------------------------------------

    def entries_after(self, after_seq: int = 0) -> List[Dict[str, Any]]:
        return self.log.entries_after(after_seq)

    def catchup_payload(self, server: Any, after_seq: int) -> Dict[str, Any]:
        """What a late joiner at *after_seq* needs to reach the present.

        Normally just the log suffix plus the current state fingerprint.
        If compaction already dropped the requested range, the newest
        snapshot rides along and the suffix restarts from its seq.
        """
        payload: Dict[str, Any] = {
            "last_seq": self.log.last_seq,
            "fingerprint": server_fingerprint(server),
        }
        first = self.log.first_seq
        if first and after_seq + 1 < first:
            snap = self.snapshots.load_latest()
            if snap is None:
                snap = self.snapshot(server)
            payload["snapshot"] = snap
            after_seq = int(snap["seq"])
        entries = self.entries_after(after_seq)
        payload["entries"] = entries
        self.catchup_requests += 1
        self.catchup_entries_served += len(entries)
        self.last_suffix_length = len(entries)
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "appends": self.appends,
            "append_bytes": self.append_bytes,
            "fsyncs": self.log.fsyncs,
            "last_seq": self.log.last_seq,
            "snapshots": self.snapshots_taken,
            "snapshot_bytes": self.snapshot_bytes,
            "replayed_ops": self.replayed_ops,
            "catchup_requests": self.catchup_requests,
            "catchup_entries_served": self.catchup_entries_served,
            "last_suffix_length": self.last_suffix_length,
        }

    def register_into(self, registry: Any, **labels: str) -> None:
        """Expose journal counters and fsync latency through obs.

        Counters are pull-time collectors (no hot-path cost); the fsync
        histogram is a live family child observed as syncs happen.
        """
        from repro.obs.metrics import Sample

        base = tuple(sorted(labels.items()))
        self._fsync_hist = registry.histogram(
            "repro_persist_fsync_seconds",
            "Op-log fsync latency",
            labelnames=tuple(k for k, _ in base),
        ).labels(*(v for _, v in base))

        help_of = {
            "appends": ("repro_persist_appends_total",
                        "Operations appended to the op log"),
            "append_bytes": ("repro_persist_append_bytes_total",
                             "Bytes appended to the op log"),
            "fsyncs": ("repro_persist_fsyncs_total",
                       "fsync calls issued by the op log"),
            "snapshots": ("repro_persist_snapshots_total",
                          "Snapshots written"),
            "snapshot_bytes": ("repro_persist_snapshot_bytes_total",
                               "Bytes written as snapshots"),
            "replayed_ops": ("repro_persist_replayed_ops_total",
                             "Operations replayed during recovery"),
            "catchup_entries_served": (
                "repro_persist_catchup_entries_total",
                "Log entries served to late joiners"),
        }

        def collect():
            stats = self.stats()
            for key, (name, help_text) in help_of.items():
                yield Sample(name, "counter", help_text, base, stats[key])
            yield Sample(
                "repro_persist_last_seq", "gauge",
                "Newest journaled sequence number", base, stats["last_seq"],
            )
            yield Sample(
                "repro_persist_last_suffix_length", "gauge",
                "Length of the most recent late-join catch-up suffix",
                base, stats["last_suffix_length"],
            )

        registry.register_collector(collect)

    def close(self) -> None:
        self.log.close()
