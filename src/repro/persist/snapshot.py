"""Snapshots of the server database, with a stable state fingerprint.

:func:`capture_state` serializes everything the paper calls the central
database — the four categories (registration records, access
permissions, historical UI states, lock table) plus the couple table,
the held floors with their pending-ack sets, and the history tombstones
— into one canonical JSON-safe dict.  :func:`restore_state` installs
such a dict into a fresh server.  Both are duck-typed against the
``CosoftServer`` attribute surface, so this module never imports the
server (no cycles) and a shard restores exactly like a standalone
server.

:func:`state_fingerprint` hashes the canonical form, giving the
identity late joiners negotiate with: two servers with equal
fingerprints hold byte-identical databases, whatever path (live
traffic, replay, catch-up) produced them.  Volatile operational data —
processed counters, routing stats, in-flight request routes — is
deliberately *outside* the fingerprint: it does not survive a crash and
must not block a recovered server from comparing equal to a live one.

:class:`SnapshotStore` persists snapshots as atomically-renamed,
CRC-guarded JSON files ``snapshot-<seq>.json``; :class:`MemorySnapshotStore`
keeps them in RAM for ephemeral persistence.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Any, Dict, List, Optional

from repro.errors import PersistenceError

#: Snapshot file format version, bumped on incompatible layout changes.
FORMAT_VERSION = 1

_SNAP_PREFIX = "snapshot-"
_SNAP_SUFFIX = ".json"


def _canonical(data: Any) -> str:
    return json.dumps(data, separators=(",", ":"), sort_keys=True)


# ---------------------------------------------------------------------------
# State capture / restore
# ---------------------------------------------------------------------------


def capture_state(server: Any) -> Dict[str, Any]:
    """The server's durable database categories, canonically ordered."""
    floors: List[Dict[str, Any]] = []
    for key in sorted(server._floors):
        floors.append(
            {
                "owner": [key[0], key[1]],
                "objects": [[g[0], g[1]] for g in server._floors[key]],
                "granted_at": server._floor_granted_at.get(key, 0.0),
                "pending_acks": sorted(server._pending_acks.get(key, ())),
            }
        )
    locks = sorted(
        (
            [[obj[0], obj[1]], server.locks.holder(obj).to_wire()]
            for obj in server.locks.locked_objects()
        ),
    )
    links = sorted(
        (link.to_wire() for link in server.couples.links()),
        key=_canonical,
    )
    return {
        "registry": sorted(
            (r.to_wire() for r in server.registry.records()),
            key=lambda r: r["instance_id"],
        ),
        "couples": links,
        "locks": locks,
        "floors": floors,
        "history": server.history.export_state(),
        "access": server.access.export_state(),
    }


def restore_state(server: Any, state: Dict[str, Any]) -> None:
    """Install a :func:`capture_state` dict into a (fresh) server."""
    from repro.server.couples import CoupleLink
    from repro.server.locks import LockOwner
    from repro.server.registry import RegistrationRecord

    for record_wire in state.get("registry", ()):
        record = RegistrationRecord.from_wire(dict(record_wire))
        if record.instance_id not in server.registry:
            server.registry.add(record)
    for link_wire in state.get("couples", ()):
        server.couples.add_link(CoupleLink.from_wire(dict(link_wire)))
    server.locks.install(
        ((str(obj[0]), str(obj[1])), LockOwner.from_wire(owner))
        for obj, owner in state.get("locks", ())
    )
    for floor in state.get("floors", ()):
        owner = floor["owner"]
        key = (str(owner[0]), int(owner[1]))
        server._floors[key] = tuple(
            (str(g[0]), str(g[1])) for g in floor.get("objects", ())
        )
        server._floor_granted_at[key] = float(floor.get("granted_at", 0.0))
        pending = {str(i) for i in floor.get("pending_acks", ())}
        if pending:
            server._pending_acks[key] = pending
    server.history.import_state(state.get("history", {}))
    server.access.import_state(state.get("access", {}))


def state_fingerprint(state: Dict[str, Any]) -> str:
    """SHA-1 over the canonical JSON of a :func:`capture_state` dict."""
    return hashlib.sha1(_canonical(state).encode("utf-8")).hexdigest()


def server_fingerprint(server: Any) -> str:
    """Convenience: fingerprint a live server's current database."""
    return state_fingerprint(capture_state(server))


def build_snapshot(server: Any, seq: int, epoch: int) -> Dict[str, Any]:
    """Wrap a state capture with its log position and identity."""
    state = capture_state(server)
    return {
        "version": FORMAT_VERSION,
        "seq": seq,
        "epoch": epoch,
        "clock": server.clock.now(),
        "fingerprint": state_fingerprint(state),
        "state": state,
    }


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


class SnapshotStore:
    """Snapshots as CRC-guarded JSON files in a directory."""

    def __init__(self, directory: str, *, keep: int = 2):
        self.directory = directory
        self.keep = keep
        os.makedirs(directory, exist_ok=True)

    def _path(self, seq: int) -> str:
        return os.path.join(self.directory, f"{_SNAP_PREFIX}{seq:012d}{_SNAP_SUFFIX}")

    def seqs(self) -> List[int]:
        """Sequence numbers of stored snapshots, ascending."""
        found = []
        for name in os.listdir(self.directory):
            if name.startswith(_SNAP_PREFIX) and name.endswith(_SNAP_SUFFIX):
                try:
                    found.append(int(name[len(_SNAP_PREFIX):-len(_SNAP_SUFFIX)]))
                except ValueError:
                    continue
        return sorted(found)

    def save(self, snapshot: Dict[str, Any]) -> int:
        """Persist one snapshot atomically; returns its byte size."""
        body = _canonical(snapshot)
        document = _canonical({"crc": zlib.crc32(body.encode("utf-8")), "snapshot": snapshot})
        path = self._path(int(snapshot["seq"]))
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(document)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.prune(self.keep)
        return len(document)

    def load(self, seq: int) -> Dict[str, Any]:
        path = self._path(seq)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, ValueError) as exc:
            raise PersistenceError(f"unreadable snapshot {path}: {exc}") from exc
        snapshot = document.get("snapshot")
        body = _canonical(snapshot)
        if zlib.crc32(body.encode("utf-8")) != document.get("crc"):
            raise PersistenceError(f"snapshot {path} fails its CRC")
        return snapshot

    def load_latest(self, max_seq: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """The newest snapshot (optionally at or below *max_seq*), or None."""
        candidates = [
            s for s in self.seqs() if max_seq is None or s <= max_seq
        ]
        if not candidates:
            return None
        return self.load(candidates[-1])

    def prune(self, keep: int) -> int:
        """Drop all but the newest *keep* snapshots (``<= 0`` keeps all)."""
        if keep <= 0:
            return 0
        removed = 0
        for seq in self.seqs()[:-keep]:
            os.remove(self._path(seq))
            removed += 1
        return removed


class MemorySnapshotStore:
    """The snapshot-store interface over a dict — no filesystem."""

    def __init__(self, **_ignored: Any):
        self._snapshots: Dict[int, Dict[str, Any]] = {}
        self.keep = _ignored.get("keep", 2)

    def seqs(self) -> List[int]:
        return sorted(self._snapshots)

    def save(self, snapshot: Dict[str, Any]) -> int:
        seq = int(snapshot["seq"])
        self._snapshots[seq] = json.loads(_canonical(snapshot))
        self.prune(self.keep)
        return len(_canonical(snapshot))

    def load(self, seq: int) -> Dict[str, Any]:
        try:
            return json.loads(_canonical(self._snapshots[seq]))
        except KeyError:
            raise PersistenceError(f"no snapshot at seq {seq}") from None

    def load_latest(self, max_seq: Optional[int] = None) -> Optional[Dict[str, Any]]:
        candidates = [s for s in self.seqs() if max_seq is None or s <= max_seq]
        return self.load(candidates[-1]) if candidates else None

    def prune(self, keep: int) -> int:
        if keep <= 0:
            return 0
        removed = 0
        for seq in self.seqs()[:-keep]:
            del self._snapshots[seq]
            removed += 1
        return removed
