"""Event-sourced persistence for the central server database.

The paper's four-category database (permissions, registration, history,
locks) lives purely in memory; this package makes it durable as an
**append-only log of commutative operations** plus periodic snapshots
("Commutative Event Sourcing vs. Triple Graph Grammars", PAPERS.md):

* :mod:`repro.persist.oplog` — length-prefixed, CRC-checked entries in
  rotating segment files (or an in-memory ring for tests and shipping);
* :mod:`repro.persist.snapshot` — canonical serialization of the server's
  DB categories (plus couple table, floors and routing epoch) with a
  stable state fingerprint;
* :mod:`repro.persist.journal` — the :class:`Persistence` coordinator a
  server journals through (fsync policy, snapshot cadence, metrics);
* :mod:`repro.persist.recovery` — crash recovery (latest snapshot + log
  suffix replay) and late-join catch-up (snapshot fingerprint + suffix).

Everything is off by default and costs one attribute check on the hot
path; see docs/PERSISTENCE.md.
"""

from repro.persist.journal import Persistence, PersistenceConfig
from repro.persist.oplog import MemoryOpLog, OpLog
from repro.persist.recovery import (
    DiscardTransport,
    apply_catchup,
    recover_cluster,
    recover_server,
)
from repro.persist.snapshot import (
    MemorySnapshotStore,
    SnapshotStore,
    capture_state,
    restore_state,
    state_fingerprint,
)

__all__ = [
    "DiscardTransport",
    "MemoryOpLog",
    "MemorySnapshotStore",
    "OpLog",
    "Persistence",
    "PersistenceConfig",
    "SnapshotStore",
    "apply_catchup",
    "capture_state",
    "recover_cluster",
    "recover_server",
    "restore_state",
    "state_fingerprint",
]
