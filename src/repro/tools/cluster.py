"""Cluster operator CLI: status, live resharding, chaos (docs/CLUSTER.md).

``python -m repro.tools.cluster`` speaks the cluster-administration
message kinds (CLUSTER_STATUS / CLUSTER_RESHARD) to a running cluster
front end over its ordinary client port — no private control socket::

    python -m repro.tools.cluster --port 7410 status
    python -m repro.tools.cluster --port 7410 add-shard
    python -m repro.tools.cluster --port 7410 remove-shard shard-2
    python -m repro.tools.cluster --port 7410 kill shard-0   # chaos: SIGKILL

``kill`` only works against a multi-process cluster
(``processes=True``), where the supervisor detects the death and
restarts the worker from its journal; embedded clusters reject it.

The programmatic surface is :class:`ClusterAdmin`, which the CLI (and
the test suite) drives.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.net import kinds
from repro.net.aio import AioClientTransport
from repro.net.message import Message

__all__ = ["ClusterAdmin", "main"]

#: The admin endpoint id replies are addressed to.
ADMIN_ID = "cluster-admin"


class ClusterAdmin:
    """A tiny request/reply client for the cluster admin kinds."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        codec: str = "json",
        timeout: float = 60.0,
    ):
        self.timeout = timeout
        self._cond = threading.Condition()
        self._replies: Dict[int, Message] = {}
        self._transport = AioClientTransport(
            ADMIN_ID, self._on_message, host, port, codec=codec
        )

    def _on_message(self, message: Message) -> None:
        if message.reply_to is None:
            return
        with self._cond:
            self._replies[message.reply_to] = message
            self._cond.notify_all()

    def _ask(self, kind: str, **payload: Any) -> Message:
        request = Message(kind=kind, sender=ADMIN_ID, payload=payload)
        self._transport.send(request)
        with self._cond:
            end = time.monotonic() + self.timeout
            while request.msg_id not in self._replies:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    raise ReproError(
                        f"no reply to {kind} within {self.timeout:.0f}s"
                    )
                self._cond.wait(remaining)
            reply = self._replies.pop(request.msg_id)
        if reply.kind == kinds.ERROR:
            raise ReproError(str(reply.payload.get("reason", "error")))
        return reply

    # -- operations -----------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return dict(self._ask(kinds.CLUSTER_STATUS).payload)

    def add_shard(self, shard_id: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"action": "add"}
        if shard_id:
            payload["shard"] = shard_id
        return dict(self._ask(kinds.CLUSTER_RESHARD, **payload).payload)

    def remove_shard(self, shard_id: str) -> Dict[str, Any]:
        return dict(
            self._ask(
                kinds.CLUSTER_RESHARD, action="remove", shard=shard_id
            ).payload
        )

    def kill(self, shard_id: str) -> Dict[str, Any]:
        return dict(
            self._ask(
                kinds.CLUSTER_RESHARD, action="kill", shard=shard_id
            ).payload
        )

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ClusterAdmin":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _format_status(status: Dict[str, Any]) -> str:
    lines = [
        f"shards:     {', '.join(status.get('shards', ()))}",
        f"placement:  {status.get('placement')}",
        f"registered: {status.get('registered')}",
        f"groups:     {status.get('couple_groups')}"
        f"  (pinned homes: {status.get('homes')})",
        f"migrations: {status.get('migrations')}",
    ]
    loads = status.get("loads") or {}
    for shard_id in status.get("shards", ()):
        row = f"  {shard_id}: load={loads.get(shard_id, 0)}"
        process = (status.get("processes") or {}).get(shard_id)
        if process:
            row += (
                f" pid={process.get('pid')} state={process.get('state')}"
                f" restarts={process.get('restarts')}"
            )
        lines.append(row)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.cluster",
        description="Operate a running COSOFT cluster (docs/CLUSTER.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--codec", default="json")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print raw JSON payloads")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("status", help="show shards, loads, processes")
    p_add = sub.add_parser("add-shard", help="grow the ring by one shard")
    p_add.add_argument("shard", nargs="?", default=None)
    p_rm = sub.add_parser("remove-shard", help="drain and retire a shard")
    p_rm.add_argument("shard")
    p_kill = sub.add_parser(
        "kill", help="SIGKILL a shard worker (multi-process clusters)"
    )
    p_kill.add_argument("shard")
    args = parser.parse_args(argv)

    admin = ClusterAdmin(
        args.host, args.port, codec=args.codec, timeout=args.timeout
    )
    try:
        if args.command == "status":
            result = admin.status()
            print(
                json.dumps(result, indent=2, sort_keys=True)
                if args.as_json
                else _format_status(result)
            )
        elif args.command == "add-shard":
            result = admin.add_shard(args.shard)
            print(json.dumps(result, indent=2, sort_keys=True))
        elif args.command == "remove-shard":
            result = admin.remove_shard(args.shard)
            print(json.dumps(result, indent=2, sort_keys=True))
        elif args.command == "kill":
            result = admin.kill(args.shard)
            print(json.dumps(result, indent=2, sort_keys=True))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        admin.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
