"""Server monitoring: human-readable snapshots of the central database.

Operating a COSOFT deployment needs visibility into the four data
categories of §2.2 — who is registered, which couple groups exist, which
floors are held, how deep the histories are.  :func:`snapshot` collects a
structured view; :func:`format_dashboard` renders it as a fixed-width text
dashboard (the kind an admin would watch next to the server).

Sharded deployments get the same treatment per shard:
:func:`cluster_snapshot` adds router-level data (homes, migrations,
per-shard load) on top of one ordinary snapshot per shard, and
:func:`format_cluster_dashboard` renders the fleet view.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.cluster.router import ShardedCosoftCluster
from repro.net import kinds
from repro.server.server import CosoftServer


def _delta_sync_counters(processed: Dict[str, int]) -> Dict[str, int]:
    """Delta-state-sync continuity counters from a processed-kind map.

    ``push_state`` counts every state transfer (full or delta);
    ``resync_requests`` counts continuity losses — a receiver whose
    baseline didn't match asked the owner for a fresh full snapshot.
    """
    return {
        "push_state": processed.get(kinds.PUSH_STATE, 0),
        "resync_requests": processed.get(kinds.RESYNC_REQUEST, 0),
    }


def snapshot(server: CosoftServer) -> Dict[str, Any]:
    """A structured, JSON-safe view of the server's current state."""
    groups = [
        sorted(f"{iid}:{path}" for iid, path in group)
        for group in server.couples.groups()
    ]
    groups.sort()
    locks: List[Dict[str, Any]] = [
        {
            "object": f"{obj[0]}:{obj[1]}",
            "holder": holder.instance_id,
            "token": holder.token,
        }
        for obj, holder in sorted(
            ((obj, server.locks.holder(obj))
             for obj in server.locks.locked_objects()),
            key=lambda item: item[0],
        )
        if holder is not None
    ]
    histories = {
        f"{obj[0]}:{obj[1]}": server.history.depth(obj)
        for obj in server.history.objects()
    }
    return {
        "time": server.clock.now(),
        "registered": [
            {
                "instance_id": record.instance_id,
                "user": record.user,
                "app_type": record.app_type,
                "host": record.host,
            }
            for record in server.registry.records()
        ],
        "couple_links": len(server.couples),
        "couple_groups": groups,
        "locks": locks,
        "lock_stats": {
            "acquisitions": server.locks.stats.acquisitions,
            "denials": server.locks.stats.denials,
            "denial_rate": round(server.locks.stats.denial_rate, 4),
        },
        "histories": histories,
        "permission_rules": len(server.access.rules()),
        "processed": dict(server.processed),
        "routing": server.routing.snapshot(),
        "delta_sync": _delta_sync_counters(server.processed),
        "persistence": (
            server.persistence.stats()
            if server.persistence is not None
            else None
        ),
    }


def format_dashboard(server: CosoftServer, *, width: int = 72) -> str:
    """Render the snapshot as a text dashboard."""
    snap = snapshot(server)
    bar = "=" * width
    thin = "-" * width
    lines: List[str] = [
        bar,
        f" COSOFT server @ t={snap['time']:.3f}s   "
        f"msgs processed: {sum(snap['processed'].values())}",
        bar,
        f" Registered instances ({len(snap['registered'])}):",
    ]
    for record in snap["registered"]:
        lines.append(
            f"   {record['instance_id']:<18} user={record['user']:<12} "
            f"type={record['app_type'] or '-'}"
        )
    lines.append(thin)
    lines.append(
        f" Couple groups ({len(snap['couple_groups'])}), "
        f"{snap['couple_links']} links:"
    )
    for group in snap["couple_groups"]:
        lines.append("   { " + ", ".join(group) + " }")
    lines.append(thin)
    if snap["locks"]:
        lines.append(f" Floors held ({len(snap['locks'])}):")
        for lock in snap["locks"]:
            lines.append(
                f"   {lock['object']:<34} held by {lock['holder']} "
                f"(token {lock['token']})"
            )
    else:
        lines.append(" Floors held: none")
    stats = snap["lock_stats"]
    lines.append(
        f"   lifetime: {stats['acquisitions']} granted, "
        f"{stats['denials']} denied (rate {stats['denial_rate']})"
    )
    lines.append(thin)
    routing = snap["routing"]
    lines.append(
        f" Routing: {routing['events']} events -> "
        f"{routing['event_receivers']} receivers   "
        f"interest-scoped: {routing['interest_messages']} "
        f"broadcast: {routing['broadcast_messages']} "
        f"suppressed: {routing['suppressed_messages']}"
    )
    delta = snap["delta_sync"]
    lines.append(
        f" Delta sync: {delta['push_state']} state pushes, "
        f"{delta['resync_requests']} resyncs (continuity losses)"
    )
    lines.append(thin)
    if snap["histories"]:
        lines.append(" Historical UI states:")
        for obj, (undo, redo) in sorted(snap["histories"].items()):
            lines.append(f"   {obj:<34} undo={undo} redo={redo}")
    else:
        lines.append(" Historical UI states: none")
    persist = snap["persistence"]
    if persist is not None:
        lines.append(thin)
        lines.append(
            f" Journal: seq {persist['last_seq']}, "
            f"{persist['appends']} appends ({persist['append_bytes']} B), "
            f"{persist['fsyncs']} fsyncs, {persist['snapshots']} snapshots"
        )
    lines.append(bar)
    return "\n".join(lines)


def format_observability(obs: Any, *, width: int = 72) -> str:
    """Render a :class:`repro.obs.Observability` as a dashboard section.

    Appends the metric families (Prometheus text exposition) and the span
    ring-buffer statistics beneath the state dashboard; pair with
    :func:`format_dashboard` for a complete operator view::

        print(format_dashboard(server))
        print(format_observability(session.obs))
    """
    bar = "=" * width
    lines: List[str] = [bar, " Observability", bar]
    if not obs.enabled:
        lines.append(" disabled (enable with SessionConfig(observability=True))")
        lines.append(bar)
        return "\n".join(lines)
    stats = obs.spans.stats()
    lines.append(
        f" Spans: {stats['spans']} recorded ({stats['open']} open, "
        f"{stats['evicted']} evicted, ring size {stats['maxlen']}), "
        f"{stats['traces']} traces"
    )
    text = obs.metrics_text().rstrip()
    if text:
        lines.append("-" * width)
        lines.extend(" " + line for line in text.splitlines())
    lines.append(bar)
    return "\n".join(lines)


def cluster_snapshot(cluster: ShardedCosoftCluster) -> Dict[str, Any]:
    """A structured view of a sharded cluster: router plus every shard."""
    traffic = cluster.shard_traffic()
    per_shard: Dict[str, Any] = {}
    for shard_id in cluster.shard_ids:
        shard_snap = snapshot(cluster.shards[shard_id])
        shard_snap["traffic_messages"] = cluster._shard_stats[shard_id].messages
        shard_snap["traffic_bytes"] = cluster._shard_stats[shard_id].bytes
        per_shard[shard_id] = shard_snap
    return {
        "time": cluster.clock.now(),
        "shards": len(cluster.shard_ids),
        "registered": len(cluster.registry),
        "couple_links": len(cluster.mirror),
        "couple_groups": len(cluster.mirror.groups()),
        "migrations": cluster.migrations,
        "homes": {
            f"{gid[0]}:{gid[1]}": shard_id
            for gid, shard_id in sorted(cluster._home.items())
        },
        "processed": dict(cluster.processed),
        "traffic": traffic.snapshot(),
        "routing": cluster.routing.snapshot(),
        "delta_sync": _delta_sync_counters(cluster.processed),
        "per_shard": per_shard,
    }


def format_cluster_dashboard(
    cluster: ShardedCosoftCluster, *, width: int = 72
) -> str:
    """Render the cluster snapshot as a text dashboard (fleet view)."""
    snap = cluster_snapshot(cluster)
    bar = "=" * width
    thin = "-" * width
    lines: List[str] = [
        bar,
        f" COSOFT cluster @ t={snap['time']:.3f}s   "
        f"{snap['shards']} shards, {snap['migrations']} migrations",
        bar,
        f" Registered instances: {snap['registered']}   "
        f"couple groups: {snap['couple_groups']} "
        f"({snap['couple_links']} links)",
        f" Shard traffic: {snap['traffic']['messages']} messages, "
        f"{snap['traffic']['bytes']} bytes",
        f" Routing: interest-scoped {snap['routing']['interest_messages']} "
        f"broadcast {snap['routing']['broadcast_messages']} "
        f"suppressed {snap['routing']['suppressed_messages']}",
        f" Delta sync: {snap['delta_sync']['push_state']} pushes, "
        f"{snap['delta_sync']['resync_requests']} resyncs",
        thin,
    ]
    for shard_id in sorted(snap["per_shard"]):
        shard = snap["per_shard"][shard_id]
        locks = len(shard["locks"])
        lines.append(
            f" {shard_id:<10} msgs={shard['traffic_messages']:<8} "
            f"groups={len(shard['couple_groups']):<4} "
            f"links={shard['couple_links']:<4} floors={locks}"
        )
    homes = snap["homes"]
    lines.append(thin)
    if homes:
        lines.append(f" Group homes ({len(homes)} pinned objects):")
        for obj, shard_id in homes.items():
            lines.append(f"   {obj:<40} -> {shard_id}")
    else:
        lines.append(" Group homes: none pinned (all placement by ring)")
    lines.append(bar)
    return "\n".join(lines)
