"""Server monitoring: human-readable snapshots of the central database.

Operating a COSOFT deployment needs visibility into the four data
categories of §2.2 — who is registered, which couple groups exist, which
floors are held, how deep the histories are.  :func:`snapshot` collects a
structured view; :func:`format_dashboard` renders it as a fixed-width text
dashboard (the kind an admin would watch next to the server).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.server.server import CosoftServer


def snapshot(server: CosoftServer) -> Dict[str, Any]:
    """A structured, JSON-safe view of the server's current state."""
    groups = [
        sorted(f"{iid}:{path}" for iid, path in group)
        for group in server.couples.groups()
    ]
    groups.sort()
    locks: List[Dict[str, Any]] = [
        {
            "object": f"{obj[0]}:{obj[1]}",
            "holder": holder.instance_id,
            "token": holder.token,
        }
        for obj, holder in sorted(
            ((obj, server.locks.holder(obj))
             for obj in server.locks.locked_objects()),
            key=lambda item: item[0],
        )
        if holder is not None
    ]
    histories = {
        f"{obj[0]}:{obj[1]}": server.history.depth(obj)
        for obj in server.history.objects()
    }
    return {
        "time": server.clock.now(),
        "registered": [
            {
                "instance_id": record.instance_id,
                "user": record.user,
                "app_type": record.app_type,
                "host": record.host,
            }
            for record in server.registry.records()
        ],
        "couple_links": len(server.couples),
        "couple_groups": groups,
        "locks": locks,
        "lock_stats": {
            "acquisitions": server.locks.stats.acquisitions,
            "denials": server.locks.stats.denials,
            "denial_rate": round(server.locks.stats.denial_rate, 4),
        },
        "histories": histories,
        "permission_rules": len(server.access.rules()),
        "processed": dict(server.processed),
    }


def format_dashboard(server: CosoftServer, *, width: int = 72) -> str:
    """Render the snapshot as a text dashboard."""
    snap = snapshot(server)
    bar = "=" * width
    thin = "-" * width
    lines: List[str] = [
        bar,
        f" COSOFT server @ t={snap['time']:.3f}s   "
        f"msgs processed: {sum(snap['processed'].values())}",
        bar,
        f" Registered instances ({len(snap['registered'])}):",
    ]
    for record in snap["registered"]:
        lines.append(
            f"   {record['instance_id']:<18} user={record['user']:<12} "
            f"type={record['app_type'] or '-'}"
        )
    lines.append(thin)
    lines.append(
        f" Couple groups ({len(snap['couple_groups'])}), "
        f"{snap['couple_links']} links:"
    )
    for group in snap["couple_groups"]:
        lines.append("   { " + ", ".join(group) + " }")
    lines.append(thin)
    if snap["locks"]:
        lines.append(f" Floors held ({len(snap['locks'])}):")
        for lock in snap["locks"]:
            lines.append(
                f"   {lock['object']:<34} held by {lock['holder']} "
                f"(token {lock['token']})"
            )
    else:
        lines.append(" Floors held: none")
    stats = snap["lock_stats"]
    lines.append(
        f"   lifetime: {stats['acquisitions']} granted, "
        f"{stats['denials']} denied (rate {stats['denial_rate']})"
    )
    lines.append(thin)
    if snap["histories"]:
        lines.append(" Historical UI states:")
        for obj, (undo, redo) in sorted(snap["histories"].items()):
            lines.append(f"   {obj:<34} undo={undo} redo={redo}")
    else:
        lines.append(" Historical UI states: none")
    lines.append(bar)
    return "\n".join(lines)
