"""Operational tooling: server monitoring and session record/replay."""

from repro.tools.monitor import format_dashboard, snapshot
from repro.tools.replay import SessionRecorder, loads, replay, replay_locally

__all__ = [
    "SessionRecorder",
    "format_dashboard",
    "loads",
    "replay",
    "replay_locally",
    "snapshot",
]
