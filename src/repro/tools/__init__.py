"""Operational tooling: server monitoring and session record/replay."""

from repro.tools.monitor import (
    cluster_snapshot,
    format_cluster_dashboard,
    format_dashboard,
    snapshot,
)
from repro.tools.replay import SessionRecorder, loads, replay, replay_locally

__all__ = [
    "SessionRecorder",
    "cluster_snapshot",
    "format_cluster_dashboard",
    "format_dashboard",
    "loads",
    "replay",
    "replay_locally",
    "snapshot",
]
