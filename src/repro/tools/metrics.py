"""Metrics CLI: run a demo workload and dump the observability state.

``python -m repro.tools.metrics`` spins up an instrumented
:class:`~repro.session.Session`, drives a small coupled workload through
the multiple-execution path (couple, floor, broadcast, remote apply),
and prints the result in the requested exporter format::

    python -m repro.tools.metrics                  # Prometheus text
    python -m repro.tools.metrics --format json    # JSON (metrics + spans)
    python -m repro.tools.metrics --format spans   # indented span trees
    python -m repro.tools.metrics --backend aio --shards 2 --events 50

The same renderers back :meth:`Session.metrics_text`,
:meth:`Session.metrics_json` and :meth:`Session.span_dump`, so the CLI
doubles as a quick check that an instrumented deployment emits every
family (`repro_routing_*`, `repro_traffic_*`, `repro_locks_*`,
`repro_compat_*`, `repro_server_*`) and complete multi-hop span trees.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.session import Session
from repro.toolkit import Form, Shell, TextField

FORMATS = ("prom", "json", "spans", "dashboard")


def build_workload_tree(root_name: str = "app") -> Shell:
    """A minimal coupled-text-field tree for the demo workload."""
    shell = Shell(root_name, title="metrics-demo")
    form = Form("form", parent=shell)
    TextField("name", parent=form, width=20)
    return shell


def run_workload(
    backend: str = "memory", *, shards: int = 0, events: int = 10
) -> Session:
    """Drive *events* coupled commits through an instrumented session.

    The returned session is still open (the caller renders its metrics
    and must close it).
    """
    sess = Session(backend, shards=shards, observability=True)
    a = sess.create_instance("writer", user="alice")
    b = sess.create_instance("reader", user="bob")
    a.add_root(build_workload_tree())
    b.add_root(build_workload_tree())
    field = a.find_widget("/app/form/name")
    a.couple(field, ("reader", "/app/form/name"))
    sess.pump()
    sess.obs.observe_span_latencies()
    for n in range(events):
        field.type_text(f"edit-{n}")
        sess.pump()
    sess.pump()
    return sess


def render(sess: Session, fmt: str) -> str:
    if fmt == "prom":
        return sess.metrics_text()
    if fmt == "json":
        return sess.metrics_json(include_spans=True)
    if fmt == "spans":
        return sess.span_dump()
    if fmt == "dashboard":
        from repro.tools.monitor import (
            format_cluster_dashboard,
            format_dashboard,
            format_observability,
        )

        if sess.config.shards > 0:
            head = format_cluster_dashboard(sess.server)
        else:
            head = format_dashboard(sess.server)
        return head + "\n" + format_observability(sess.obs)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.metrics",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--backend",
        choices=("memory", "tcp", "aio"),
        default="memory",
        help="session backend to exercise (default: memory)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count; 0 runs the plain central server (default: 0)",
    )
    parser.add_argument(
        "--events",
        type=int,
        default=10,
        help="coupled commits to drive through the workload (default: 10)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="prom",
        dest="fmt",
        help="output renderer: Prometheus text, JSON, span trees, "
        "or the monitor dashboard (default: prom)",
    )
    args = parser.parse_args(argv)
    sess = run_workload(args.backend, shards=args.shards, events=args.events)
    try:
        output = render(sess, args.fmt)
    finally:
        sess.close()
    sys.stdout.write(output)
    if not output.endswith("\n"):
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
