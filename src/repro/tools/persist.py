"""Operator CLI for event-sourced persistence directories.

Mirrors :mod:`repro.tools.metrics`: a small argparse front end over the
library (``python -m repro.tools.persist <command> <directory>``).

Commands
--------
``inspect``
    Summarize a journal: segments, sequence range, per-kind operation
    counts, stored snapshots with their fingerprints.
``verify-crc``
    CRC-check every op-log segment and snapshot file; exit 1 when
    anything is corrupt (the check crash recovery runs implicitly,
    runnable on a cold directory).
``compact``
    Drop whole op-log segments below the newest snapshot's sequence
    number (or an explicit ``--upto-seq``).  Compaction trades
    time-travel depth for disk: replay can no longer reach below the
    compaction point, which is why it is a manual command and not
    something the journal does behind the operator's back.
"""

from __future__ import annotations

import argparse
import json
from collections import Counter
from typing import Any, Dict, List, Optional

from repro.errors import PersistenceError
from repro.persist import OpLog, SnapshotStore


def _open(directory: str) -> tuple:
    import os

    return (
        OpLog(os.path.join(directory, "oplog")),
        SnapshotStore(os.path.join(directory, "snapshots")),
    )


def inspect_dir(directory: str) -> Dict[str, Any]:
    """JSON-safe summary of one persistence directory."""
    log, snaps = _open(directory)
    try:
        report = log.verify()
        kinds: Counter = Counter()
        for entry in log.read():
            kinds[str(entry.get("msg", {}).get("kind", "?"))] += 1
        snapshots: List[Dict[str, Any]] = []
        for seq in snaps.seqs():
            try:
                snap = snaps.load(seq)
                snapshots.append(
                    {
                        "seq": seq,
                        "epoch": snap.get("epoch", 0),
                        "clock": snap.get("clock", 0.0),
                        "fingerprint": snap.get("fingerprint", ""),
                    }
                )
            except PersistenceError as exc:
                snapshots.append({"seq": seq, "error": str(exc)})
        return {
            "directory": directory,
            "segments": report["segments"],
            "entries": report["entries"],
            "first_seq": report["first_seq"],
            "last_seq": report["last_seq"],
            "kinds": dict(sorted(kinds.items())),
            "snapshots": snapshots,
        }
    finally:
        log.close()


def verify_dir(directory: str) -> Dict[str, Any]:
    """CRC-check everything; ``{"ok": bool, "problems": [...]}``."""
    log, snaps = _open(directory)
    try:
        problems: List[str] = []
        report = log.verify()
        for segment in report["segments"]:
            if segment["problem"] is not None:
                problems.append(f"{segment['path']}: {segment['problem']}")
        for seq in snaps.seqs():
            try:
                snaps.load(seq)
            except PersistenceError as exc:
                problems.append(str(exc))
        return {
            "directory": directory,
            "entries": report["entries"],
            "snapshots": len(snaps.seqs()),
            "ok": not problems,
            "problems": problems,
        }
    finally:
        log.close()


def compact_dir(
    directory: str, upto_seq: Optional[int] = None
) -> Dict[str, Any]:
    """Drop op-log segments fully below the compaction point."""
    log, snaps = _open(directory)
    try:
        if upto_seq is None:
            latest = snaps.load_latest()
            if latest is None:
                raise PersistenceError(
                    "no snapshot to compact below; pass --upto-seq to force"
                )
            upto_seq = int(latest["seq"])
        removed = log.compact(upto_seq)
        return {
            "directory": directory,
            "upto_seq": upto_seq,
            "segments_removed": removed,
            "first_seq": log.first_seq,
            "last_seq": log.last_seq,
        }
    finally:
        log.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.persist",
        description="Inspect, verify and compact op-log directories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="summarize a journal")
    p_inspect.add_argument("directory")

    p_verify = sub.add_parser(
        "verify-crc", help="CRC-check segments and snapshots"
    )
    p_verify.add_argument("directory")

    p_compact = sub.add_parser(
        "compact", help="drop segments below the newest snapshot"
    )
    p_compact.add_argument("directory")
    p_compact.add_argument(
        "--upto-seq", type=int, default=None,
        help="compact below this seq instead of the newest snapshot's",
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "inspect":
            result = inspect_dir(args.directory)
        elif args.command == "verify-crc":
            result = verify_dir(args.directory)
        else:
            result = compact_dir(args.directory, upto_seq=args.upto_seq)
    except PersistenceError as exc:
        print(json.dumps({"error": str(exc)}, indent=2))
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.command == "verify-crc" and not result["ok"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
