"""Session recording and replay.

Deterministic reproduction of an interactive run: record every executed
event from an instance's trace into a JSON-safe log, then replay the log
against a fresh instance (or a whole fresh session).  Used for

* debugging ("what sequence led to this state?"),
* the E6 experiment's action-replay arm,
* regression fixtures (a recorded session is a compact integration test).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping

from repro.core.instance import ApplicationInstance
from repro.toolkit.events import Event
from repro.toolkit.widget import UIObject


class SessionRecorder:
    """Tap an instance's local events into a serializable log.

    Only *locally initiated* events are recorded (remote re-executions are
    a consequence, not an input); replaying the log through the coupling
    layer regenerates the remote effects.
    """

    def __init__(self, instance: ApplicationInstance):
        self.instance = instance
        self._mark = len(instance.trace)

    def cut(self) -> List[Dict[str, Any]]:
        """Return the log of events since construction (or the last cut)."""
        events = self.instance.trace.events()[self._mark:]
        self._mark = len(self.instance.trace)
        return [
            event.to_wire()
            for event in events
            if event.instance_id == self.instance.instance_id
        ]

    def dumps(self) -> str:
        return json.dumps(self.cut(), separators=(",", ":"))


def loads(log: str) -> List[Dict[str, Any]]:
    data = json.loads(log)
    if not isinstance(data, list):
        raise ValueError("a session log is a JSON array of events")
    return data


def replay(
    log: Iterable[Mapping[str, Any]],
    instance: ApplicationInstance,
    *,
    strict: bool = True,
) -> int:
    """Re-fire every logged event on *instance*'s widgets.

    Events go through ``widget.fire`` — i.e. through the full coupling
    pipeline, locks and broadcasts included — so a replay against a live
    session reproduces the original collaboration.  Returns the number of
    events fired.  With ``strict=False``, events whose widget no longer
    exists are skipped instead of raising.
    """
    fired = 0
    for entry in log:
        event = Event.from_wire(dict(entry))
        widget = instance.find_widget(event.source_path)
        if widget is None or widget.destroyed:
            if strict:
                raise LookupError(
                    f"no widget at {event.source_path!r} to replay onto"
                )
            continue
        widget.fire(event.type, user=event.user, **dict(event.params))
        fired += 1
    return fired


def replay_locally(
    log: Iterable[Mapping[str, Any]],
    root: UIObject,
    *,
    strict: bool = True,
) -> int:
    """Apply a log to a bare widget tree (no instance, no network).

    The offline variant: feedback and callbacks run, nothing is sent.
    This is the E6 'action replay' reconciliation path.
    """
    applied = 0
    for entry in log:
        event = Event.from_wire(dict(entry))
        try:
            widget = root.find(event.source_path)
        except Exception:
            if strict:
                raise
            continue
        widget.deliver(event.retargeted(widget.pathname, ""))
        applied += 1
    return applied
