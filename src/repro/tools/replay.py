"""Session recording and replay, plus journal time travel.

Deterministic reproduction of an interactive run: record every executed
event from an instance's trace into a JSON-safe log, then replay the log
against a fresh instance (or a whole fresh session).  Used for

* debugging ("what sequence led to this state?"),
* the E6 experiment's action-replay arm,
* regression fixtures (a recorded session is a compact integration test).

With event-sourced persistence on (docs/PERSISTENCE.md) the *server*
side is replayable too: :func:`state_at` reconstructs the server
database as of any journal sequence number, and ``python -m
repro.tools.replay --log-dir DIR --at-seq N`` prints it — "what did the
server believe at op N?" without touching the live deployment.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.core.instance import ApplicationInstance
from repro.toolkit.events import Event
from repro.toolkit.widget import UIObject


class SessionRecorder:
    """Tap an instance's local events into a serializable log.

    Only *locally initiated* events are recorded (remote re-executions are
    a consequence, not an input); replaying the log through the coupling
    layer regenerates the remote effects.
    """

    def __init__(self, instance: ApplicationInstance):
        self.instance = instance
        self._mark = len(instance.trace)

    def cut(self) -> List[Dict[str, Any]]:
        """Return the log of events since construction (or the last cut)."""
        events = self.instance.trace.events()[self._mark:]
        self._mark = len(self.instance.trace)
        return [
            event.to_wire()
            for event in events
            if event.instance_id == self.instance.instance_id
        ]

    def dumps(self) -> str:
        return json.dumps(self.cut(), separators=(",", ":"))


def loads(log: str) -> List[Dict[str, Any]]:
    data = json.loads(log)
    if not isinstance(data, list):
        raise ValueError("a session log is a JSON array of events")
    return data


def replay(
    log: Iterable[Mapping[str, Any]],
    instance: ApplicationInstance,
    *,
    strict: bool = True,
) -> int:
    """Re-fire every logged event on *instance*'s widgets.

    Events go through ``widget.fire`` — i.e. through the full coupling
    pipeline, locks and broadcasts included — so a replay against a live
    session reproduces the original collaboration.  Returns the number of
    events fired.  With ``strict=False``, events whose widget no longer
    exists are skipped instead of raising.
    """
    fired = 0
    for entry in log:
        event = Event.from_wire(dict(entry))
        widget = instance.find_widget(event.source_path)
        if widget is None or widget.destroyed:
            if strict:
                raise LookupError(
                    f"no widget at {event.source_path!r} to replay onto"
                )
            continue
        widget.fire(event.type, user=event.user, **dict(event.params))
        fired += 1
    return fired


def replay_locally(
    log: Iterable[Mapping[str, Any]],
    root: UIObject,
    *,
    strict: bool = True,
) -> int:
    """Apply a log to a bare widget tree (no instance, no network).

    The offline variant: feedback and callbacks run, nothing is sent.
    This is the E6 'action replay' reconciliation path.
    """
    applied = 0
    for entry in log:
        event = Event.from_wire(dict(entry))
        try:
            widget = root.find(event.source_path)
        except Exception:
            if strict:
                raise
            continue
        widget.deliver(event.retargeted(widget.pathname, ""))
        applied += 1
    return applied


# ---------------------------------------------------------------------------
# Journal time travel (event-sourced persistence)
# ---------------------------------------------------------------------------


def state_at(
    directory: str,
    at_seq: Optional[int] = None,
    **server_kwargs: Any,
) -> Dict[str, Any]:
    """The server database as of journal position *at_seq*.

    Rebuilds a server from the journal in *directory* (snapshot + log
    suffix, exactly the crash-recovery path) stopping after *at_seq*
    (``None`` = the present), and returns a JSON-safe report:
    ``{"seq", "clock", "fingerprint", "state", "stats"}``.
    """
    from repro.persist import PersistenceConfig, recover_server
    from repro.persist.snapshot import capture_state, state_fingerprint

    persistence = PersistenceConfig(directory=directory).build()
    try:
        server = recover_server(persistence, at_seq=at_seq, **server_kwargs)
        state = capture_state(server)
        return {
            "seq": (
                at_seq if at_seq is not None else persistence.log.last_seq
            ),
            "last_seq": persistence.log.last_seq,
            "clock": server.clock.now(),
            "fingerprint": state_fingerprint(state),
            "state": state,
            "stats": {
                "registered": len(server.registry),
                "couple_links": len(server.couples),
                "locks_held": len(server.locks),
                "floors_held": len(server._floors),
                "history_entries": len(server.history),
            },
        }
    finally:
        persistence.close()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.tools.replay`` — journal time travel."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.replay",
        description=(
            "Reconstruct the server database from an op-log directory, "
            "optionally as of a historical sequence number."
        ),
    )
    parser.add_argument(
        "--log-dir", required=True,
        help="persistence directory (the one holding oplog/ and snapshots/)",
    )
    parser.add_argument(
        "--at-seq", type=int, default=None,
        help="stop replay after this sequence number (default: the present)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="include the complete captured state, not just the summary",
    )
    args = parser.parse_args(argv)
    report = state_at(args.log_dir, at_seq=args.at_seq)
    if not args.full:
        report = {k: v for k, v in report.items() if k != "state"}
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
