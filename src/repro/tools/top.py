"""Live cluster dashboard: ``python -m repro.tools.top``.

A refreshing terminal view of a running deployment, driven entirely by
the Prometheus ``/metrics`` endpoint (``SessionConfig(metrics_port=...)``
— docs/OBSERVABILITY.md)::

    python -m repro.tools.top --url http://127.0.0.1:9464/metrics
    python -m repro.tools.top --url ... --once       # one frame (scripts/CI)
    python -m repro.tools.top --demo                 # self-contained demo
                                                     # cluster to watch

Each frame shows per-shard liveness (up / restarts / heartbeat age),
message throughput (msgs/s between frames), envelope fill, journal fsync
latency and the p50/p99 sync-latency decomposition from the histogram
buckets.  On a multi-process cluster every scrape transparently
delta-pulls the workers, so the numbers cover the whole fleet.

The scrape parser is deliberately self-contained (stdlib only) and
doubles as a conformance check of the text exposition.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
import urllib.request
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ParsedMetrics",
    "parse_prometheus_text",
    "quantile_from_buckets",
    "render_frame",
    "main",
]

#: ``name{labels} value`` label pair, with escaped-value support.
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_LINE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(?:\s+\d+)?$"
)

Labels = Tuple[Tuple[str, str], ...]


def _unescape(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


class ParsedMetrics:
    """A scraped exposition, queryable by name and label subset."""

    def __init__(self) -> None:
        #: name -> [(labels, value)] in exposition order.
        self.series: Dict[str, List[Tuple[Labels, float]]] = {}

    def add(self, name: str, labels: Labels, value: float) -> None:
        self.series.setdefault(name, []).append((labels, value))

    def get(self, name: str, **match: str) -> List[Tuple[Labels, float]]:
        """Series of *name* whose labels include every ``match`` pair."""
        want = set(match.items())
        return [
            (labels, value)
            for labels, value in self.series.get(name, ())
            if want.issubset(set(labels))
        ]

    def value(self, name: str, default: float = 0.0, **match: str) -> float:
        found = self.get(name, **match)
        return found[0][1] if found else default

    def total(self, name: str, **match: str) -> float:
        return sum(value for _, value in self.get(name, **match))

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values of *label* across a family, first-seen order."""
        seen: Dict[str, None] = {}
        for labels, _ in self.series.get(name, ()):
            for key, value in labels:
                if key == label:
                    seen.setdefault(value, None)
        return list(seen)

    def histogram(
        self, name: str, **match: str
    ) -> Optional[Dict[str, object]]:
        """Reassemble one histogram: cumulative ``buckets``, count, sum."""
        buckets = [
            (
                _parse_value(dict(labels)["le"]),
                value,
            )
            for labels, value in self.get(f"{name}_bucket", **match)
            if any(k == "le" for k, _ in labels)
        ]
        if not buckets:
            return None
        buckets.sort(key=lambda item: item[0])
        return {
            "buckets": buckets,
            "count": self.value(f"{name}_count", **match),
            "sum": self.value(f"{name}_sum", **match),
        }


def parse_prometheus_text(text: str) -> ParsedMetrics:
    """Parse a 0.0.4 text exposition (the subset this repo emits)."""
    parsed = ParsedMetrics()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        matched = _LINE_RE.match(line)
        if not matched:
            continue
        name, _, label_blob, raw_value = matched.groups()
        labels: Labels = ()
        if label_blob:
            labels = tuple(
                (key, _unescape(value))
                for key, value in _LABEL_RE.findall(label_blob)
            )
        try:
            parsed.add(name, labels, _parse_value(raw_value))
        except ValueError:
            continue
    return parsed


def quantile_from_buckets(
    buckets: Iterable[Tuple[float, float]], count: float, q: float
) -> Optional[float]:
    """The smallest bucket bound covering quantile *q* (0..1).

    Standard Prometheus semantics: cumulative buckets, answer is the
    upper bound of the first bucket whose cumulative count reaches
    ``q * count``.  Returns None with no observations.
    """
    if count <= 0:
        return None
    target = q * count
    for bound, cumulative in buckets:
        if cumulative >= target:
            return bound
    return None


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}us"


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.0f}"


def render_frame(
    parsed: ParsedMetrics,
    *,
    previous: Optional[ParsedMetrics] = None,
    interval: float = 0.0,
    source: str = "",
) -> str:
    """One dashboard frame from a scrape (and optionally the previous
    one, for msgs/s deltas)."""
    lines: List[str] = []
    shard_ids = parsed.label_values("repro_cluster_shard_up", "shard")
    up = sum(
        1
        for sid in shard_ids
        if parsed.value("repro_cluster_shard_up", shard=sid) >= 1.0
    )
    restarts = parsed.total("repro_cluster_shard_restarts_total")
    total_msgs = parsed.total("repro_traffic_messages_total")
    rate: Optional[float] = None
    if previous is not None and interval > 0:
        rate = max(
            0.0,
            (total_msgs - previous.total("repro_traffic_messages_total"))
            / interval,
        )
    header = (
        f"repro.tools.top — {time.strftime('%H:%M:%S')}"
        + (f" — {source}" if source else "")
    )
    lines.append(header)
    lines.append(
        f"shards {up}/{len(shard_ids)} up   restarts {restarts:.0f}   "
        f"msgs {total_msgs:,.0f}   msgs/s {_fmt_rate(rate)}   "
        f"envelope-fill "
        f"{parsed.value('repro_net_envelope_fill', default=0.0):.2f}"
    )
    if shard_ids:
        lines.append("")
        lines.append(
            f"{'SHARD':<10} {'UP':>3} {'RESTARTS':>9} {'HB-AGE':>8} "
            f"{'MSGS':>10} {'MSGS/S':>8} {'FSYNC-p99':>10} {'INSTANCES':>10}"
        )
        for sid in shard_ids:
            shard_up = parsed.value("repro_cluster_shard_up", shard=sid)
            age = parsed.value(
                "repro_cluster_shard_heartbeat_age_seconds",
                default=float("inf"),
                shard=sid,
            )
            processed = parsed.total(
                "repro_server_processed_total", shard=sid
            )
            shard_rate: Optional[float] = None
            if previous is not None and interval > 0:
                shard_rate = max(
                    0.0,
                    (
                        processed
                        - previous.total(
                            "repro_server_processed_total", shard=sid
                        )
                    )
                    / interval,
                )
            fsync = parsed.histogram("repro_persist_fsync_seconds", shard=sid)
            fsync_p99 = (
                quantile_from_buckets(
                    fsync["buckets"], fsync["count"], 0.99  # type: ignore[index]
                )
                if fsync
                else None
            )
            instances = parsed.value(
                "repro_server_registered_instances", shard=sid
            )
            lines.append(
                f"{sid:<10} {'up' if shard_up >= 1 else 'DOWN':>3} "
                f"{parsed.value('repro_cluster_shard_restarts_total', shard=sid):>9.0f} "
                f"{_fmt_seconds(age):>8} {processed:>10.0f} "
                f"{_fmt_rate(shard_rate):>8} {_fmt_seconds(fsync_p99):>10} "
                f"{instances:>10.0f}"
            )
    segments = parsed.label_values("repro_sync_latency_seconds_bucket", "segment")
    if segments:
        lines.append("")
        lines.append(
            f"{'SYNC-LATENCY':<14} {'COUNT':>8} {'p50':>10} {'p99':>10} "
            f"{'MEAN':>10}"
        )
        for segment in segments:
            hist = parsed.histogram(
                "repro_sync_latency_seconds", segment=segment
            )
            if not hist:
                continue
            count = hist["count"]
            mean = (
                hist["sum"] / count if count else None  # type: ignore[operator]
            )
            lines.append(
                f"{segment:<14} {count:>8.0f} "
                f"{_fmt_seconds(quantile_from_buckets(hist['buckets'], count, 0.5)):>10} "  # type: ignore[arg-type]
                f"{_fmt_seconds(quantile_from_buckets(hist['buckets'], count, 0.99)):>10} "  # type: ignore[arg-type]
                f"{_fmt_seconds(mean):>10}"
            )
    return "\n".join(lines) + "\n"


def _scrape(url: str, timeout: float) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _run_loop(
    scrape, *, interval: float, once: bool, source: str, out=None
) -> int:
    out = out or sys.stdout
    previous: Optional[ParsedMetrics] = None
    previous_at = 0.0
    while True:
        parsed = parse_prometheus_text(scrape())
        now = time.monotonic()
        frame = render_frame(
            parsed,
            previous=previous,
            interval=(now - previous_at) if previous is not None else 0.0,
            source=source,
        )
        if once:
            out.write(frame)
            return 0
        # Clear + home, then the frame: flicker-free enough for a tty.
        out.write("\x1b[2J\x1b[H" + frame)
        out.flush()
        previous, previous_at = parsed, now
        time.sleep(interval)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.top",
        description=__doc__.splitlines()[0],
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url",
        help="a /metrics endpoint to watch "
        "(SessionConfig(metrics_port=...))",
    )
    source.add_argument(
        "--file",
        help="render one frame from a saved exposition file",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="spin up a multi-process demo cluster and watch it",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh period in seconds (default: 1.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (for scripts and CI)",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0,
        help="per-scrape HTTP timeout (default: 5.0)",
    )
    args = parser.parse_args(argv)

    if args.file:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
        sys.stdout.write(
            render_frame(parse_prometheus_text(text), source=args.file)
        )
        return 0

    if args.demo:
        import tempfile
        import threading

        from repro.session import Session
        from repro.tools.metrics import build_workload_tree

        directory = tempfile.mkdtemp(prefix="repro-top-demo-")
        sess = Session(
            backend="aio",
            shards=2,
            processes=True,
            observability=True,
            persistence=directory,
            metrics_port=0,
        )
        stop = threading.Event()

        def churn() -> None:
            a = sess.create_instance("writer", user="alice")
            b = sess.create_instance("reader", user="bob")
            a.add_root(build_workload_tree())
            b.add_root(build_workload_tree())
            field = a.find_widget("/app/form/name")
            a.couple(field, ("reader", "/app/form/name"))
            n = 0
            while not stop.is_set():
                field.type_text(str(n % 10))
                n += 1
                stop.wait(0.1)

        worker = threading.Thread(target=churn, daemon=True)
        worker.start()
        host, port = sess.metrics_address
        url = f"http://{host}:{port}/metrics"
        try:
            return _run_loop(
                lambda: _scrape(url, args.timeout),
                interval=args.interval,
                once=args.once,
                source=f"demo cluster @ {url}",
            )
        except KeyboardInterrupt:
            return 0
        finally:
            stop.set()
            worker.join(timeout=5.0)
            sess.close()

    try:
        return _run_loop(
            lambda: _scrape(args.url, args.timeout),
            interval=args.interval,
            once=args.once,
            source=args.url,
        )
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
